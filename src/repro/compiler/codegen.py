"""MIPS assembly generation from allocated IR.

Emits the textual assembly dialect accepted by :mod:`repro.isa.assembler`.
Conventions (matching the paper's instruction-set-overhead discussion):

* register moves are emitted as ``addiu rd, rs, 0`` -- the arithmetic
  instruction with a zero immediate that the decompiler's constant
  propagation must turn back into a wire,
* constants materialize through ``li`` (addiu/ori/lui+ori),
* dense switches become bounds-checked ``jr``-through-table sequences,
* spill code uses $t8/$t9, comparisons/branches use $at as scratch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler import ir
from repro.compiler.regalloc import Allocation, allocate
from repro.errors import CompileError
from repro.isa.registers import REG_NAMES, Reg

_SCRATCH_A = REG_NAMES[int(Reg.T8)]  # "$t8"
_SCRATCH_B = REG_NAMES[int(Reg.T9)]  # "$t9"
_AT = REG_NAMES[int(Reg.AT)]
_ZERO = "$zero"
_SP = "$sp"
_ARG_REGS = ["$a0", "$a1", "$a2", "$a3"]

#: reg-reg instruction for each IR binary op (simple cases)
_SIMPLE_RR = {
    "add": "addu",
    "sub": "subu",
    "and": "and",
    "or": "or",
    "xor": "xor",
    "shl": "sllv",
    "shr": "srlv",
    "sar": "srav",
}

#: immediate instruction for each IR binary op (operand checked by imm_fold)
_SIMPLE_RI = {
    "add": "addiu",
    "and": "andi",
    "or": "ori",
    "xor": "xori",
    "shl": "sll",
    "shr": "srl",
    "sar": "sra",
    "lt": "slti",
    "ltu": "sltiu",
}


@dataclass
class _FrameLayout:
    spill_base: int
    local_offsets: dict[int, int]  # slot.index -> sp offset
    saved_regs: list[tuple[int, int]]  # (reg number, sp offset)
    ra_offset: int | None
    size: int


class FunctionCodegen:
    def __init__(
        self,
        func: ir.Function,
        allocation: Allocation,
        jump_tables: list[tuple[str, list[str]]],
    ):
        self.func = func
        self.allocation = allocation
        self.jump_tables = jump_tables
        self.lines: list[str] = []
        self.has_calls = any(isinstance(i, ir.Call) for i in func.instrs)
        self.frame = self._layout_frame()
        self.epilogue_label = f".L{func.name}_epilogue"

    # ------------------------------------------------------------------
    # frame layout
    # ------------------------------------------------------------------

    def _layout_frame(self) -> _FrameLayout:
        offset = 0
        spill_base = offset
        offset += 4 * self.allocation.spill_count
        local_offsets: dict[int, int] = {}
        for slot in self.func.slots:
            size = (slot.size + 3) & ~3
            local_offsets[slot.index] = offset
            offset += size
        saved_regs: list[tuple[int, int]] = []
        for reg in self.allocation.used_callee_saved:
            saved_regs.append((reg, offset))
            offset += 4
        ra_offset: int | None = None
        if self.has_calls:
            ra_offset = offset
            offset += 4
        size = (offset + 7) & ~7
        return _FrameLayout(spill_base, local_offsets, saved_regs, ra_offset, size)

    def _spill_offset(self, vreg: ir.VReg) -> int:
        return self.frame.spill_base + 4 * self.allocation.spill_of[vreg]

    # ------------------------------------------------------------------
    # operand helpers
    # ------------------------------------------------------------------

    def emit(self, text: str) -> None:
        self.lines.append("    " + text)

    def emit_label(self, name: str) -> None:
        self.lines.append(f"{name}:")

    def _src(self, vreg: ir.VReg, scratch: str) -> str:
        """Return a register holding *vreg*, loading from the frame if spilled."""
        reg = self.allocation.reg_of.get(vreg)
        if reg is not None:
            return REG_NAMES[reg]
        self.emit(f"lw {scratch}, {self._spill_offset(vreg)}({_SP})")
        return scratch

    def _dst(self, vreg: ir.VReg) -> tuple[str, int | None]:
        """Return (register to compute into, spill offset to store to or None)."""
        reg = self.allocation.reg_of.get(vreg)
        if reg is not None:
            return REG_NAMES[reg], None
        return _SCRATCH_A, self._spill_offset(vreg)

    def _finish_dst(self, reg: str, store_offset: int | None) -> None:
        if store_offset is not None:
            self.emit(f"sw {reg}, {store_offset}({_SP})")

    # ------------------------------------------------------------------
    # function body
    # ------------------------------------------------------------------

    def generate(self) -> list[str]:
        self.emit_label(self.func.name)
        self._prologue()
        for instr in self.func.instrs:
            self._gen_instr(instr)
        self._epilogue()
        return self.lines

    def _prologue(self) -> None:
        frame = self.frame
        if frame.size:
            self.emit(f"addiu {_SP}, {_SP}, -{frame.size}")
        if frame.ra_offset is not None:
            self.emit(f"sw $ra, {frame.ra_offset}({_SP})")
        for reg, offset in frame.saved_regs:
            self.emit(f"sw {REG_NAMES[reg]}, {offset}({_SP})")
        for index, param in enumerate(self.func.params):
            reg = self.allocation.reg_of.get(param)
            if reg is not None:
                self.emit(f"addiu {REG_NAMES[reg]}, {_ARG_REGS[index]}, 0")
            elif param in self.allocation.spill_of:
                self.emit(f"sw {_ARG_REGS[index]}, {self._spill_offset(param)}({_SP})")
            # else: parameter never used; no move needed

    def _epilogue(self) -> None:
        frame = self.frame
        self.emit_label(self.epilogue_label)
        if frame.ra_offset is not None:
            self.emit(f"lw $ra, {frame.ra_offset}({_SP})")
        for reg, offset in frame.saved_regs:
            self.emit(f"lw {REG_NAMES[reg]}, {offset}({_SP})")
        if frame.size:
            self.emit(f"addiu {_SP}, {_SP}, {frame.size}")
        self.emit("jr $ra")

    # ------------------------------------------------------------------
    # per-instruction emission
    # ------------------------------------------------------------------

    def _gen_instr(self, instr: ir.Instr) -> None:
        if isinstance(instr, ir.Label):
            self.emit_label(instr.name)
        elif isinstance(instr, ir.Const):
            reg, store = self._dst(instr.dst)
            self.emit(f"li {reg}, {instr.value & 0xFFFF_FFFF}")
            self._finish_dst(reg, store)
        elif isinstance(instr, ir.Copy):
            src = self._src(instr.src, _SCRATCH_B)
            reg, store = self._dst(instr.dst)
            self.emit(f"addiu {reg}, {src}, 0")
            self._finish_dst(reg, store)
        elif isinstance(instr, ir.UnOp):
            self._gen_unop(instr)
        elif isinstance(instr, ir.BinOp):
            self._gen_binop(instr)
        elif isinstance(instr, ir.Load):
            self._gen_load(instr)
        elif isinstance(instr, ir.Store):
            self._gen_store(instr)
        elif isinstance(instr, ir.LoadAddr):
            reg, store = self._dst(instr.dst)
            suffix = f"+{instr.offset}" if instr.offset else ""
            self.emit(f"la {reg}, {instr.symbol}{suffix}")
            self._finish_dst(reg, store)
        elif isinstance(instr, ir.SlotAddr):
            reg, store = self._dst(instr.dst)
            self.emit(f"addiu {reg}, {_SP}, {self.frame.local_offsets[instr.slot.index]}")
            self._finish_dst(reg, store)
        elif isinstance(instr, ir.LoadSlot):
            reg, store = self._dst(instr.dst)
            self.emit(f"lw {reg}, {self.frame.local_offsets[instr.slot.index]}({_SP})")
            self._finish_dst(reg, store)
        elif isinstance(instr, ir.StoreSlot):
            src = self._src(instr.src, _SCRATCH_A)
            self.emit(f"sw {src}, {self.frame.local_offsets[instr.slot.index]}({_SP})")
        elif isinstance(instr, ir.Jump):
            self.emit(f"j {instr.target}")
        elif isinstance(instr, ir.Branch):
            self._gen_branch(instr)
        elif isinstance(instr, ir.SwitchJump):
            self._gen_switch(instr)
        elif isinstance(instr, ir.Call):
            self._gen_call(instr)
        elif isinstance(instr, ir.Return):
            if instr.src is not None:
                reg = self.allocation.reg_of.get(instr.src)
                if reg is not None:
                    self.emit(f"addiu $v0, {REG_NAMES[reg]}, 0")
                else:
                    self.emit(f"lw $v0, {self._spill_offset(instr.src)}({_SP})")
            self.emit(f"j {self.epilogue_label}")
        else:  # pragma: no cover
            raise CompileError(f"codegen cannot handle {type(instr).__name__}")

    def _gen_unop(self, instr: ir.UnOp) -> None:
        src = self._src(instr.src, _SCRATCH_B)
        reg, store = self._dst(instr.dst)
        if instr.op == "neg":
            self.emit(f"subu {reg}, {_ZERO}, {src}")
        elif instr.op == "not":
            self.emit(f"nor {reg}, {src}, {_ZERO}")
        else:  # pragma: no cover
            raise CompileError(f"unknown unary op {instr.op}")
        self._finish_dst(reg, store)

    def _gen_binop(self, instr: ir.BinOp) -> None:
        op = instr.op
        a = self._src(instr.a, _SCRATCH_A)
        if isinstance(instr.b, ir.Imm):
            self._gen_binop_imm(instr, a, instr.b.value)
            return
        b = self._src(instr.b, _SCRATCH_B)
        reg, store = self._dst(instr.dst)
        if op in _SIMPLE_RR:
            if op in ("shl", "shr", "sar"):
                self.emit(f"{_SIMPLE_RR[op]} {reg}, {a}, {b}")
            else:
                self.emit(f"{_SIMPLE_RR[op]} {reg}, {a}, {b}")
        elif op == "mul":
            self.emit(f"mult {a}, {b}")
            self.emit(f"mflo {reg}")
        elif op in ("div", "divu"):
            self.emit(f"{'div' if op == 'div' else 'divu'} {a}, {b}")
            self.emit(f"mflo {reg}")
        elif op in ("rem", "remu"):
            self.emit(f"{'div' if op == 'rem' else 'divu'} {a}, {b}")
            self.emit(f"mfhi {reg}")
        elif op == "eq":
            self.emit(f"subu {_AT}, {a}, {b}")
            self.emit(f"sltiu {reg}, {_AT}, 1")
        elif op == "ne":
            self.emit(f"subu {_AT}, {a}, {b}")
            self.emit(f"sltu {reg}, {_ZERO}, {_AT}")
        elif op == "lt":
            self.emit(f"slt {reg}, {a}, {b}")
        elif op == "ltu":
            self.emit(f"sltu {reg}, {a}, {b}")
        elif op == "gt":
            self.emit(f"slt {reg}, {b}, {a}")
        elif op == "gtu":
            self.emit(f"sltu {reg}, {b}, {a}")
        elif op == "le":
            self.emit(f"slt {reg}, {b}, {a}")
            self.emit(f"xori {reg}, {reg}, 1")
        elif op == "leu":
            self.emit(f"sltu {reg}, {b}, {a}")
            self.emit(f"xori {reg}, {reg}, 1")
        elif op == "ge":
            self.emit(f"slt {reg}, {a}, {b}")
            self.emit(f"xori {reg}, {reg}, 1")
        elif op == "geu":
            self.emit(f"sltu {reg}, {a}, {b}")
            self.emit(f"xori {reg}, {reg}, 1")
        else:  # pragma: no cover
            raise CompileError(f"unknown binary op {op}")
        self._finish_dst(reg, store)

    def _gen_binop_imm(self, instr: ir.BinOp, a: str, value: int) -> None:
        op = instr.op
        reg, store = self._dst(instr.dst)
        if op == "sub":
            self.emit(f"addiu {reg}, {a}, {-value}")
        elif op in _SIMPLE_RI:
            self.emit(f"{_SIMPLE_RI[op]} {reg}, {a}, {value}")
        elif op == "eq":
            if value == 0:
                self.emit(f"sltiu {reg}, {a}, 1")
            elif 0 < value <= 0xFFFF:
                self.emit(f"xori {_AT}, {a}, {value}")
                self.emit(f"sltiu {reg}, {_AT}, 1")
            else:
                self.emit(f"li {_AT}, {value & 0xFFFF_FFFF}")
                self.emit(f"subu {_AT}, {a}, {_AT}")
                self.emit(f"sltiu {reg}, {_AT}, 1")
        elif op == "ne":
            if value == 0:
                self.emit(f"sltu {reg}, {_ZERO}, {a}")
            elif 0 < value <= 0xFFFF:
                self.emit(f"xori {_AT}, {a}, {value}")
                self.emit(f"sltu {reg}, {_ZERO}, {_AT}")
            else:
                self.emit(f"li {_AT}, {value & 0xFFFF_FFFF}")
                self.emit(f"subu {_AT}, {a}, {_AT}")
                self.emit(f"sltu {reg}, {_ZERO}, {_AT}")
        else:  # materialize and fall back to the register path
            self.emit(f"li {_AT}, {value & 0xFFFF_FFFF}")
            saved_b = instr.b
            instr.b = instr.a  # placeholder to reuse register path
            try:
                self._gen_binop_rr_with(instr, a, _AT, reg)
            finally:
                instr.b = saved_b
        self._finish_dst(reg, store)

    def _gen_binop_rr_with(self, instr: ir.BinOp, a: str, b: str, reg: str) -> None:
        """Register-register emission into *reg* (helper for the imm fallback)."""
        op = instr.op
        if op in _SIMPLE_RR:
            self.emit(f"{_SIMPLE_RR[op]} {reg}, {a}, {b}")
        elif op == "mul":
            self.emit(f"mult {a}, {b}")
            self.emit(f"mflo {reg}")
        elif op in ("div", "divu"):
            self.emit(f"{'div' if op == 'div' else 'divu'} {a}, {b}")
            self.emit(f"mflo {reg}")
        elif op in ("rem", "remu"):
            self.emit(f"{'div' if op == 'rem' else 'divu'} {a}, {b}")
            self.emit(f"mfhi {reg}")
        elif op == "lt":
            self.emit(f"slt {reg}, {a}, {b}")
        elif op == "ltu":
            self.emit(f"sltu {reg}, {a}, {b}")
        elif op == "gt":
            self.emit(f"slt {reg}, {b}, {a}")
        elif op == "gtu":
            self.emit(f"sltu {reg}, {b}, {a}")
        elif op == "le":
            self.emit(f"slt {reg}, {b}, {a}")
            self.emit(f"xori {reg}, {reg}, 1")
        elif op == "leu":
            self.emit(f"sltu {reg}, {b}, {a}")
            self.emit(f"xori {reg}, {reg}, 1")
        elif op == "ge":
            self.emit(f"slt {reg}, {a}, {b}")
            self.emit(f"xori {reg}, {reg}, 1")
        elif op == "geu":
            self.emit(f"sltu {reg}, {a}, {b}")
            self.emit(f"xori {reg}, {reg}, 1")
        else:  # pragma: no cover
            raise CompileError(f"unknown binary op {op}")

    _LOAD_MNEMONIC = {
        (1, True): "lb",
        (1, False): "lbu",
        (2, True): "lh",
        (2, False): "lhu",
        (4, True): "lw",
        (4, False): "lw",
    }
    _STORE_MNEMONIC = {1: "sb", 2: "sh", 4: "sw"}

    def _gen_load(self, instr: ir.Load) -> None:
        base = self._src(instr.base, _SCRATCH_A)
        reg, store = self._dst(instr.dst)
        mnemonic = self._LOAD_MNEMONIC[(instr.size, instr.signed)]
        self.emit(f"{mnemonic} {reg}, {instr.offset}({base})")
        self._finish_dst(reg, store)

    def _gen_store(self, instr: ir.Store) -> None:
        src = self._src(instr.src, _SCRATCH_A)
        base = self._src(instr.base, _SCRATCH_B)
        self.emit(f"{self._STORE_MNEMONIC[instr.size]} {src}, {instr.offset}({base})")

    def _gen_branch(self, instr: ir.Branch) -> None:
        op = instr.op
        a = self._src(instr.a, _SCRATCH_A)
        target = instr.target
        if isinstance(instr.b, ir.Imm):
            value = instr.b.value
            if value == 0:
                zero_forms = {
                    "eq": f"beq {a}, {_ZERO}, {target}",
                    "ne": f"bne {a}, {_ZERO}, {target}",
                    "lt": f"bltz {a}, {target}",
                    "ge": f"bgez {a}, {target}",
                    "gt": f"bgtz {a}, {target}",
                    "le": f"blez {a}, {target}",
                    # unsigned comparisons against zero
                    "ltu": None,  # never true
                    "geu": f"j {target}",  # always true
                    "gtu": f"bne {a}, {_ZERO}, {target}",
                    "leu": f"beq {a}, {_ZERO}, {target}",
                }
                form = zero_forms[op]
                if form is not None:
                    self.emit(form)
                return
            self.emit(f"li {_AT}, {value & 0xFFFF_FFFF}")
            b = _AT
        else:
            b = self._src(instr.b, _SCRATCH_B)
        if op == "eq":
            self.emit(f"beq {a}, {b}, {target}")
        elif op == "ne":
            self.emit(f"bne {a}, {b}, {target}")
        elif op in ("lt", "ltu"):
            cmp_instr = "slt" if op == "lt" else "sltu"
            self.emit(f"{cmp_instr} {_AT}, {a}, {b}")
            self.emit(f"bne {_AT}, {_ZERO}, {target}")
        elif op in ("ge", "geu"):
            cmp_instr = "slt" if op == "ge" else "sltu"
            self.emit(f"{cmp_instr} {_AT}, {a}, {b}")
            self.emit(f"beq {_AT}, {_ZERO}, {target}")
        elif op in ("gt", "gtu"):
            cmp_instr = "slt" if op == "gt" else "sltu"
            self.emit(f"{cmp_instr} {_AT}, {b}, {a}")
            self.emit(f"bne {_AT}, {_ZERO}, {target}")
        elif op in ("le", "leu"):
            cmp_instr = "slt" if op == "le" else "sltu"
            self.emit(f"{cmp_instr} {_AT}, {b}, {a}")
            self.emit(f"beq {_AT}, {_ZERO}, {target}")
        else:  # pragma: no cover
            raise CompileError(f"unknown branch op {op}")

    def _gen_switch(self, instr: ir.SwitchJump) -> None:
        index = self._src(instr.index, _SCRATCH_A)
        self.emit(f"sll {_AT}, {index}, 2")
        self.emit(f"la {_SCRATCH_B}, {instr.table_name}")
        self.emit(f"addu {_SCRATCH_B}, {_SCRATCH_B}, {_AT}")
        self.emit(f"lw {_SCRATCH_B}, 0({_SCRATCH_B})")
        self.emit(f"jr {_SCRATCH_B}")

    def _gen_call(self, instr: ir.Call) -> None:
        for index, arg in enumerate(instr.args):
            reg = self.allocation.reg_of.get(arg)
            if reg is not None:
                self.emit(f"addiu {_ARG_REGS[index]}, {REG_NAMES[reg]}, 0")
            else:
                self.emit(f"lw {_ARG_REGS[index]}, {self._spill_offset(arg)}({_SP})")
        self.emit(f"jal {instr.name}")
        if instr.dst is not None:
            reg = self.allocation.reg_of.get(instr.dst)
            if reg is not None:
                self.emit(f"addiu {REG_NAMES[reg]}, $v0, 0")
            elif instr.dst in self.allocation.spill_of:
                self.emit(f"sw $v0, {self._spill_offset(instr.dst)}({_SP})")
            # else: result unused and register never allocated


def generate_assembly(
    module: ir.Module,
    jump_tables: dict[str, list[tuple[str, list[str]]]],
) -> str:
    """Generate a complete assembly file (text + data + jump tables)."""
    lines: list[str] = [".text"]
    lines.append("_start:")
    lines.append("    jal main")
    lines.append("    break")

    for func in module.functions.values():
        allocation = allocate(func)
        codegen = FunctionCodegen(func, allocation, jump_tables.get(func.name, []))
        lines.extend(codegen.generate())

    data_lines: list[str] = [".data"]
    for var in module.globals.values():
        if var.element_size == 4:
            data_lines.append(".align 2")
            directive = ".word"
        elif var.element_size == 2:
            data_lines.append(".align 1")
            directive = ".half"
        else:
            directive = ".byte"
        values = ", ".join(str(v & ((1 << (8 * var.element_size)) - 1)) for v in var.init_values)
        data_lines.append(f"{var.name}: {directive} {values}")
    for func_name, tables in jump_tables.items():
        for table_name, labels in tables:
            data_lines.append(".align 2")
            data_lines.append(f"{table_name}: .word {', '.join(labels)}")
    lines.extend(data_lines)
    return "\n".join(lines) + "\n"
