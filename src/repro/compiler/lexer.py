"""Tokenizer for the mini-C language."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.errors import CompileError

KEYWORDS = {
    "int", "unsigned", "signed", "short", "char", "void", "long",
    "if", "else", "while", "do", "for", "switch", "case", "default",
    "break", "continue", "return", "const", "static",
}

# Longest first so maximal munch works with simple ordered matching.
PUNCTUATION = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ";", ",", "?", ":",
]


class TokenKind(Enum):
    KEYWORD = auto()
    IDENT = auto()
    NUMBER = auto()
    CHAR = auto()
    STRING = auto()
    PUNCT = auto()
    EOF = auto()


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int
    value: int = 0  # numeric value for NUMBER/CHAR tokens

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})@{self.line}"


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


def tokenize(source: str) -> list[Token]:
    """Convert *source* into a token list terminated by an EOF token."""
    tokens: list[Token] = []
    line = 1
    col = 1
    index = 0
    length = len(source)

    def error(message: str) -> CompileError:
        return CompileError(message, line, col)

    while index < length:
        ch = source[index]

        # whitespace
        if ch == "\n":
            line += 1
            col = 1
            index += 1
            continue
        if ch in " \t\r":
            index += 1
            col += 1
            continue

        # comments
        if source.startswith("//", index):
            while index < length and source[index] != "\n":
                index += 1
            continue
        if source.startswith("/*", index):
            end = source.find("*/", index + 2)
            if end == -1:
                raise error("unterminated block comment")
            skipped = source[index : end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            index = end + 2
            continue

        start_line, start_col = line, col

        # numbers
        if ch.isdigit():
            end = index
            if source.startswith(("0x", "0X"), index):
                end = index + 2
                while end < length and source[end] in "0123456789abcdefABCDEF":
                    end += 1
                text = source[index:end]
                value = int(text, 16)
            else:
                while end < length and source[end].isdigit():
                    end += 1
                text = source[index:end]
                value = int(text, 10)
            # accept (and ignore) C suffixes so kernels can say 1UL etc.
            while end < length and source[end] in "uUlL":
                end += 1
            text = source[index:end]
            tokens.append(Token(TokenKind.NUMBER, text, start_line, start_col, value))
            col += end - index
            index = end
            continue

        # character literals
        if ch == "'":
            end = index + 1
            body = ""
            while end < length and source[end] != "'":
                if source[end] == "\\":
                    body += source[end : end + 2]
                    end += 2
                else:
                    body += source[end]
                    end += 1
            if end >= length:
                raise error("unterminated character literal")
            decoded = body.encode().decode("unicode_escape")
            if len(decoded) != 1:
                raise error(f"bad character literal '{body}'")
            tokens.append(
                Token(TokenKind.CHAR, source[index : end + 1], start_line, start_col, ord(decoded))
            )
            col += end + 1 - index
            index = end + 1
            continue

        # identifiers / keywords
        if _is_ident_start(ch):
            end = index
            while end < length and _is_ident_char(source[end]):
                end += 1
            text = source[index:end]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, start_line, start_col))
            col += end - index
            index = end
            continue

        # punctuation (maximal munch)
        for punct in PUNCTUATION:
            if source.startswith(punct, index):
                tokens.append(Token(TokenKind.PUNCT, punct, start_line, start_col))
                index += len(punct)
                col += len(punct)
                break
        else:
            raise error(f"unexpected character {ch!r}")

    tokens.append(Token(TokenKind.EOF, "", line, col))
    return tokens
