"""Control-flow cleanup: unreachable code, jump-to-next, unused labels.

Runs after constant folding (which may have turned conditional branches
into unconditional jumps) and keeps the emitted binary free of dead blocks
-- important because dead code would distort the decompiler's size metrics.
"""

from __future__ import annotations

from repro.compiler import ir


def simplify_control_flow(func: ir.Function) -> bool:
    changed = False
    while True:
        round_changed = False
        round_changed |= _remove_unreachable(func)
        round_changed |= _remove_jump_to_next(func)
        round_changed |= _remove_unused_labels(func)
        round_changed |= _thread_jump_chains(func)
        if not round_changed:
            break
        changed = True
    return changed


def _remove_unreachable(func: ir.Function) -> bool:
    blocks = ir.build_cfg(func)
    if not blocks:
        return False
    reachable: set[int] = set()
    stack = [0]
    while stack:
        index = stack.pop()
        if index in reachable:
            continue
        reachable.add(index)
        stack.extend(blocks[index].succs)
    if len(reachable) == len(blocks):
        return False
    kept = [block for index, block in enumerate(blocks) if index in reachable]
    func.instrs = ir.flatten_cfg(kept)
    return True


def _remove_jump_to_next(func: ir.Function) -> bool:
    changed = False
    new_instrs: list[ir.Instr] = []
    instrs = func.instrs
    for index, instr in enumerate(instrs):
        if isinstance(instr, ir.Jump):
            # find the next label, skipping nothing (jump must be block end)
            next_index = index + 1
            if next_index < len(instrs) and isinstance(instrs[next_index], ir.Label):
                if instrs[next_index].name == instr.target:
                    changed = True
                    continue
        new_instrs.append(instr)
    func.instrs = new_instrs
    return changed


def _remove_unused_labels(func: ir.Function) -> bool:
    targets: set[str] = set()
    for instr in func.instrs:
        if isinstance(instr, ir.Jump):
            targets.add(instr.target)
        elif isinstance(instr, ir.Branch):
            targets.add(instr.target)
        elif isinstance(instr, ir.SwitchJump):
            targets.update(instr.labels)
    new_instrs = [
        instr
        for instr in func.instrs
        if not (isinstance(instr, ir.Label) and instr.name not in targets)
    ]
    if len(new_instrs) == len(func.instrs):
        return False
    func.instrs = new_instrs
    return True


def _thread_jump_chains(func: ir.Function) -> bool:
    """Retarget jumps/branches that point at a label immediately followed by
    an unconditional jump (empty forwarding blocks)."""
    forward: dict[str, str] = {}
    instrs = func.instrs
    for index, instr in enumerate(instrs):
        if isinstance(instr, ir.Label) and index + 1 < len(instrs):
            follower = instrs[index + 1]
            if isinstance(follower, ir.Jump) and follower.target != instr.name:
                forward[instr.name] = follower.target

    def resolve(name: str) -> str:
        seen = set()
        while name in forward and name not in seen:
            seen.add(name)
            name = forward[name]
        return name

    changed = False
    for instr in instrs:
        if isinstance(instr, ir.Jump):
            target = resolve(instr.target)
            if target != instr.target:
                instr.target = target
                changed = True
        elif isinstance(instr, ir.Branch):
            target = resolve(instr.target)
            if target != instr.target:
                instr.target = target
                changed = True
        elif isinstance(instr, ir.SwitchJump):
            new_labels = [resolve(name) for name in instr.labels]
            if new_labels != instr.labels:
                instr.labels = new_labels
                changed = True
    return changed
