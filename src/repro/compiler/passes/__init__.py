"""Compiler optimization passes.

Each pass is a function ``pass_fn(func: ir.Function) -> bool`` returning
whether it changed anything (so the driver can iterate to a fixed point).
AST-level transforms (loop unrolling) live in :mod:`ast_unroll` and run
before IR generation.
"""

from repro.compiler.passes.mem2reg import promote_slots
from repro.compiler.passes.constfold import fold_constants, propagate_copies
from repro.compiler.passes.dce import eliminate_dead_code
from repro.compiler.passes.cleanup import simplify_control_flow
from repro.compiler.passes.imm_fold import fold_immediates
from repro.compiler.passes.cse import local_cse
from repro.compiler.passes.licm import hoist_loop_invariants
from repro.compiler.passes.strength import reduce_strength
from repro.compiler.passes.ast_unroll import unroll_loops

__all__ = [
    "eliminate_dead_code",
    "fold_constants",
    "fold_immediates",
    "hoist_loop_invariants",
    "local_cse",
    "promote_slots",
    "propagate_copies",
    "reduce_strength",
    "simplify_control_flow",
    "unroll_loops",
]
