"""Compiler-side strength reduction (enabled at -O2).

Replaces constant multiplications with shift/add/sub sequences and
power-of-two divisions/remainders with shift sequences, as gcc does.  This
is the optimization whose *output* the paper's decompiler must recognize and
undo with **strength promotion**: the shift/add series obscures the original
multiplication, and a synthesis tool should decide for itself whether a
hardware multiplier or an adder tree is the better implementation.
"""

from __future__ import annotations

from repro.compiler import ir
from repro.compiler.passes.constfold import _single_def_consts
from repro.utils import to_signed32

#: maximum number of shift/add/sub operations worth emitting for one multiply
MAX_MUL_OPS = 4


def decompose_multiplier(value: int) -> list[tuple[str, int]] | None:
    """Decompose multiplication by *value* into shift/add/sub terms.

    Returns a list of ('+'|'-', shift_amount) terms meaning
    ``result = sum(sign * (x << shift))``, or None if the decomposition
    needs more than MAX_MUL_OPS terms.  Uses the canonical signed-digit
    (Booth-like) recoding so values like 15 become (x<<4) - x.
    """
    if value <= 0:
        return None
    # non-adjacent form: minimal number of signed power-of-two digits
    terms: list[tuple[str, int]] = []
    shift = 0
    v = value
    while v:
        if v & 1:
            if v & 3 == 3:  # ...11 -> subtract here, carry upward
                terms.append(("-", shift))
                v += 1
            else:
                terms.append(("+", shift))
                v -= 1
        v >>= 1
        shift += 1
    if len(terms) > MAX_MUL_OPS:
        return None
    return terms


def reduce_strength(func: ir.Function) -> bool:
    consts = _single_def_consts(func)
    changed = False
    new_instrs: list[ir.Instr] = []
    for instr in func.instrs:
        replacement = None
        if isinstance(instr, ir.BinOp):
            const_val = None
            reg_operand = None
            if isinstance(instr.b, ir.Imm):
                const_val, reg_operand = to_signed32(instr.b.value), instr.a
            elif isinstance(instr.b, ir.VReg) and instr.b in consts:
                const_val, reg_operand = to_signed32(consts[instr.b]), instr.a
            elif (
                instr.op == "mul"
                and instr.a in consts
                and isinstance(instr.b, ir.VReg)
            ):
                const_val, reg_operand = to_signed32(consts[instr.a]), instr.b
            if const_val is not None:
                if instr.op == "mul":
                    replacement = _expand_mul(func, instr.dst, reg_operand, const_val)
                elif instr.op in ("div", "divu") and const_val > 0 and _is_pow2(const_val):
                    replacement = _expand_div(
                        func, instr.dst, reg_operand, const_val, instr.op == "div"
                    )
                elif instr.op in ("rem", "remu") and const_val > 0 and _is_pow2(const_val):
                    replacement = _expand_rem(
                        func, instr.dst, reg_operand, const_val, instr.op == "rem"
                    )
        if replacement is not None:
            new_instrs.extend(replacement)
            changed = True
        else:
            new_instrs.append(instr)
    func.instrs = new_instrs
    return changed


def _is_pow2(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


def _expand_mul(
    func: ir.Function, dst: ir.VReg, src: ir.VReg, value: int
) -> list[ir.Instr] | None:
    negate = value < 0
    magnitude = -value if negate else value
    if magnitude == 0:
        return [ir.Const(dst, 0)]
    terms = decompose_multiplier(magnitude)
    if terms is None:
        return None
    out: list[ir.Instr] = []
    partials: list[tuple[str, ir.VReg]] = []
    for sign, shift in terms:
        if shift == 0:
            partials.append((sign, src))
        else:
            shifted = func.new_vreg()
            out.append(ir.BinOp(shifted, "shl", src, ir.Imm(shift)))
            partials.append((sign, shifted))
    # combine: positives first, then subtract negatives
    partials.sort(key=lambda item: item[0] == "-")
    if partials[0][0] == "-":
        return None  # cannot start from a negative partial cheaply
    acc = partials[0][1]
    for sign, reg in partials[1:]:
        combined = func.new_vreg()
        out.append(ir.BinOp(combined, "add" if sign == "+" else "sub", acc, reg))
        acc = combined
    if negate:
        negged = func.new_vreg()
        out.append(ir.UnOp(negged, "neg", acc))
        acc = negged
    if acc is src:
        out.append(ir.Copy(dst, src))
    else:
        _retarget_last(out, acc, dst)
    return out


def _retarget_last(instrs: list[ir.Instr], old: ir.VReg, dst: ir.VReg) -> None:
    """Make the final instruction write directly to *dst*."""
    last = instrs[-1]
    if isinstance(last, (ir.BinOp, ir.UnOp)) and last.dst is old:
        last.dst = dst
    else:  # pragma: no cover - defensive
        instrs.append(ir.Copy(dst, old))


def _expand_div(
    func: ir.Function, dst: ir.VReg, src: ir.VReg, value: int, signed: bool
) -> list[ir.Instr]:
    shift = value.bit_length() - 1
    if not signed:
        return [ir.BinOp(dst, "shr", src, ir.Imm(shift))]
    if shift == 0:
        return [ir.Copy(dst, src)]
    # signed round-toward-zero: add (value-1) when the operand is negative
    out: list[ir.Instr] = []
    sign = func.new_vreg()
    out.append(ir.BinOp(sign, "sar", src, ir.Imm(31)))
    bias = func.new_vreg()
    out.append(ir.BinOp(bias, "shr", sign, ir.Imm(32 - shift)))
    adjusted = func.new_vreg()
    out.append(ir.BinOp(adjusted, "add", src, bias))
    out.append(ir.BinOp(dst, "sar", adjusted, ir.Imm(shift)))
    return out


def _expand_rem(
    func: ir.Function, dst: ir.VReg, src: ir.VReg, value: int, signed: bool
) -> list[ir.Instr]:
    if not signed:
        return [ir.BinOp(dst, "and", src, ir.Imm(value - 1))]
    # x % 2^k == x - (x / 2^k) * 2^k with round-toward-zero division
    shift = value.bit_length() - 1
    quotient = func.new_vreg()
    out = _expand_div(func, quotient, src, value, signed=True)
    scaled = func.new_vreg()
    out.append(ir.BinOp(scaled, "shl", quotient, ir.Imm(shift)))
    out.append(ir.BinOp(dst, "sub", src, scaled))
    return out
