"""Local common-subexpression elimination (block-scoped value numbering).

Pure computations with identical operands inside a basic block are reused
via a Copy.  Loads are *not* CSE'd across stores or calls.  Enabled at -O2.
"""

from __future__ import annotations

from repro.compiler import ir


def _operand_key(operand: ir.Operand) -> tuple:
    if isinstance(operand, ir.Imm):
        return ("imm", operand.value)
    return ("reg", operand.id)


def local_cse(func: ir.Function) -> bool:
    changed = False
    blocks = ir.build_cfg(func)
    for block in blocks:
        available: dict[tuple, ir.VReg] = {}
        loads: dict[tuple, ir.VReg] = {}
        new_instrs: list[ir.Instr] = []
        for instr in block.instrs:
            key = None
            table = available
            if isinstance(instr, ir.BinOp):
                key = ("bin", instr.op, _operand_key(instr.a), _operand_key(instr.b))
                if instr.op in ir.COMMUTATIVE_OPS:
                    a_key, b_key = _operand_key(instr.a), _operand_key(instr.b)
                    key = ("bin", instr.op) + tuple(sorted((a_key, b_key)))
            elif isinstance(instr, ir.UnOp):
                key = ("un", instr.op, _operand_key(instr.src))
            elif isinstance(instr, ir.Const):
                key = ("const", instr.value)
            elif isinstance(instr, ir.LoadAddr):
                key = ("addr", instr.symbol, instr.offset)
            elif isinstance(instr, ir.SlotAddr):
                key = ("slotaddr", instr.slot.index)
            elif isinstance(instr, ir.Load):
                key = ("load", _operand_key(instr.base), instr.offset, instr.size, instr.signed)
                table = loads
            elif isinstance(instr, (ir.Store, ir.Call)):
                loads.clear()  # memory may have changed

            if key is not None:
                existing = table.get(key)
                if existing is not None:
                    new_instrs.append(ir.Copy(instr.defs()[0], existing))
                    changed = True
                    continue
                table[key] = instr.defs()[0]

            # any redefinition invalidates value-numbering entries using it
            for reg in instr.defs():
                for mapping in (available, loads):
                    stale = [
                        k for k, v in mapping.items()
                        if v == reg or _uses_reg(k, reg.id)
                    ]
                    for k in stale:
                        del mapping[k]
            new_instrs.append(instr)
        block.instrs = new_instrs
    func.instrs = ir.flatten_cfg(blocks)
    return changed


def _uses_reg(key, reg_id: int) -> bool:
    """True if the value-number key mentions operand ("reg", reg_id)."""
    if isinstance(key, tuple):
        if len(key) == 2 and key[0] == "reg" and key[1] == reg_id:
            return True
        return any(_uses_reg(part, reg_id) for part in key)
    return False
