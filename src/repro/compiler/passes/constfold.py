"""Constant folding/propagation and block-local copy propagation.

Constants are propagated through *single-definition* virtual registers
(expression temporaries -- the overwhelming majority after lowering), which
is sound regardless of control flow.  Multi-definition registers (promoted
variables) are folded only when every reaching definition agrees, which we
approximate conservatively by not folding them at all; the combination with
copy propagation and DCE still converges to clean code in practice.
"""

from __future__ import annotations

from repro.compiler import ir
from repro.compiler.consteval import fold_binary, fold_binary_unsigned
from repro.errors import CompileError
from repro.utils import to_signed32

#: IR ops that fold with signed semantics via consteval.fold_binary
_SIGNED_FOLD = {
    "add": "+", "sub": "-", "mul": "*", "div": "/", "rem": "%",
    "and": "&", "or": "|", "xor": "^",
    "shl": "<<", "sar": ">>",
    "eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">=",
}
_UNSIGNED_FOLD = {
    "divu": "/", "remu": "%", "shr": ">>",
    "ltu": "<", "leu": "<=", "gtu": ">", "geu": ">=",
}


def fold_ir_binop(op: str, left: int, right: int) -> int | None:
    """Evaluate an IR binary op on signed-32 ints; None if undefined (div 0)."""
    try:
        if op in _SIGNED_FOLD:
            return fold_binary(_SIGNED_FOLD[op], left, right)
        if op in _UNSIGNED_FOLD:
            return fold_binary_unsigned(_UNSIGNED_FOLD[op], left, right)
    except CompileError:
        return None
    raise ValueError(f"unknown IR op {op!r}")


def _single_def_consts(func: ir.Function) -> dict[ir.VReg, int]:
    """vregs defined exactly once, by a Const instruction."""
    def_counts: dict[ir.VReg, int] = {}
    const_defs: dict[ir.VReg, int] = {}
    for instr in func.instrs:
        for reg in instr.defs():
            def_counts[reg] = def_counts.get(reg, 0) + 1
            if isinstance(instr, ir.Const):
                const_defs[reg] = instr.value
    return {
        reg: value for reg, value in const_defs.items() if def_counts.get(reg) == 1
    }


def _value_of(operand: ir.Operand, consts: dict[ir.VReg, int]) -> int | None:
    if isinstance(operand, ir.Imm):
        return to_signed32(operand.value)
    const = consts.get(operand)
    return to_signed32(const) if const is not None else None


def fold_constants(func: ir.Function) -> bool:
    """One round of folding; returns True if anything changed."""
    consts = _single_def_consts(func)
    changed = False
    new_instrs: list[ir.Instr] = []

    for instr in func.instrs:
        replacement: ir.Instr | None = None
        if isinstance(instr, ir.BinOp):
            a_val = _value_of(instr.a, consts)
            b_val = _value_of(instr.b, consts)
            if a_val is not None and b_val is not None:
                folded = fold_ir_binop(instr.op, a_val, b_val)
                if folded is not None:
                    replacement = ir.Const(instr.dst, folded & 0xFFFF_FFFF)
            if replacement is None:
                replacement = _algebraic(instr, a_val, b_val)
        elif isinstance(instr, ir.UnOp):
            src_val = _value_of(instr.src, consts)
            if src_val is not None:
                value = -src_val if instr.op == "neg" else ~src_val
                replacement = ir.Const(instr.dst, value & 0xFFFF_FFFF)
        elif isinstance(instr, ir.Branch):
            a_val = _value_of(instr.a, consts)
            b_val = _value_of(instr.b, consts)
            if a_val is not None and b_val is not None:
                taken = fold_ir_binop(instr.op, a_val, b_val)
                replacement = ir.Jump(instr.target) if taken else _NOP
        if replacement is _NOP:
            changed = True
            continue
        if replacement is not None:
            new_instrs.append(replacement)
            changed = True
        else:
            new_instrs.append(instr)
    func.instrs = new_instrs
    return changed


_NOP = object()  # sentinel meaning "delete this instruction"


def _algebraic(
    instr: ir.BinOp, a_val: int | None, b_val: int | None
) -> ir.Instr | None:
    """Identity simplifications (x+0, x*1, x*0, x&0, x|0, x^0, shifts by 0)."""
    op = instr.op
    if b_val == 0:
        if op in ("add", "sub", "or", "xor", "shl", "shr", "sar"):
            return ir.Copy(instr.dst, instr.a)
        if op in ("mul", "and"):
            return ir.Const(instr.dst, 0)
    if b_val == 1 and op in ("mul", "div", "divu"):
        return ir.Copy(instr.dst, instr.a)
    if a_val == 0:
        if op in ("add", "or", "xor") and isinstance(instr.b, ir.VReg):
            return ir.Copy(instr.dst, instr.b)
        if op in ("mul", "and"):
            return ir.Const(instr.dst, 0)
    if a_val == 1 and op == "mul" and isinstance(instr.b, ir.VReg):
        return ir.Copy(instr.dst, instr.b)
    return None


def propagate_copies(func: ir.Function) -> bool:
    """Forward copy propagation within basic blocks.

    Within a block, after ``dst = src``, uses of ``dst`` become ``src`` until
    either register is redefined.  Block-local operation keeps it sound for
    multi-definition registers.
    """
    changed = False
    blocks = ir.build_cfg(func)
    for block in blocks:
        available: dict[ir.VReg, ir.VReg] = {}
        for instr in block.instrs:
            mapping = {
                reg: available[reg]
                for reg in instr.uses()
                if reg in available
            }
            if mapping:
                instr.replace_uses(dict(mapping))
                changed = True
            defs = instr.defs()
            for reg in defs:
                available.pop(reg, None)
                # invalidate copies whose source was overwritten
                stale = [dst for dst, src in available.items() if src == reg]
                for dst in stale:
                    del available[dst]
            if isinstance(instr, ir.Copy) and instr.dst != instr.src:
                available[instr.dst] = instr.src
    func.instrs = ir.flatten_cfg(blocks)
    return changed
