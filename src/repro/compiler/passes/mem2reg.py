"""Promote non-address-taken scalar stack slots to virtual registers.

Because a mini-C local is a single mutable cell, mapping each promotable
slot to one dedicated virtual register preserves semantics exactly without
SSA construction: ``LoadSlot`` becomes a copy *from* the register and
``StoreSlot`` a copy *to* it.  Register allocation later handles the live
ranges.  This pass is what separates -O0 (everything in the frame) from
-O1 and above.
"""

from __future__ import annotations

from repro.compiler import ir


def promote_slots(func: ir.Function) -> bool:
    promotable = {
        slot.index: slot
        for slot in func.slots
        if not slot.is_array and not slot.address_taken and slot.size == 4
    }
    if not promotable:
        return False

    slot_regs: dict[int, ir.VReg] = {
        index: func.new_vreg(slot.name or f"slot{index}")
        for index, slot in promotable.items()
    }

    changed = False
    new_instrs: list[ir.Instr] = []
    for instr in func.instrs:
        if isinstance(instr, ir.LoadSlot) and instr.slot.index in slot_regs:
            new_instrs.append(ir.Copy(instr.dst, slot_regs[instr.slot.index]))
            changed = True
        elif isinstance(instr, ir.StoreSlot) and instr.slot.index in slot_regs:
            new_instrs.append(ir.Copy(slot_regs[instr.slot.index], instr.src))
            changed = True
        else:
            new_instrs.append(instr)
    func.instrs = new_instrs
    if changed:
        func.slots = [slot for slot in func.slots if slot.index not in slot_regs]
    return changed
