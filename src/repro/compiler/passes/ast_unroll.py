"""AST-level loop unrolling (enabled at -O3).

Unrolls counted ``for`` loops of the canonical shape

    for (i = START; i < BOUND; i += STEP) BODY

by a constant factor U, producing

    for (i = START; i + (U-1)*STEP < BOUND; ) { BODY; i+=STEP; ... xU }
    for (; i < BOUND; i += STEP) BODY          /* remainder */

Requirements checked before transforming: the induction variable is a plain
name, the step is ``i++``/``i += C`` with positive constant C, the body does
not modify ``i``, contains no ``break``/``continue``/``return``/``switch``,
and is small.  The emitted binary then contains the repeated, isomorphic
body copies with interleaved induction updates that the paper's **loop
rerolling** pass must detect and roll back.
"""

from __future__ import annotations

import copy

from repro.compiler import ast_nodes as ast

DEFAULT_FACTOR = 4
MAX_BODY_STMTS = 12


def unroll_loops(unit: ast.TranslationUnit, factor: int = DEFAULT_FACTOR) -> int:
    """Unroll eligible for-loops in place; returns the number unrolled."""
    count = 0
    global_names = {decl.name for decl in unit.globals}
    for func in unit.functions:
        if func.body is not None:
            count += _walk_stmt_list(func.body.body, factor, global_names)
    return count


def _walk_stmt_list(stmts: list[ast.Stmt], factor: int, global_names: set[str]) -> int:
    count = 0
    for index, stmt in enumerate(stmts):
        replacement, inner = _transform(stmt, factor, global_names)
        if replacement is not None:
            stmts[index] = replacement
            count += 1
        count += inner
    return count


def _transform(
    stmt: ast.Stmt, factor: int, global_names: set[str]
) -> tuple[ast.Stmt | None, int]:
    """Returns (replacement or None, count of loops unrolled in children)."""
    inner = 0
    if isinstance(stmt, ast.BlockStmt):
        inner += _walk_stmt_list(stmt.body, factor, global_names)
        return None, inner
    if isinstance(stmt, ast.IfStmt):
        for attr in ("then_body", "else_body"):
            child = getattr(stmt, attr)
            if child is not None:
                replacement, n = _transform(child, factor, global_names)
                if replacement is not None:
                    setattr(stmt, attr, replacement)
                    inner += 1
                inner += n
        return None, inner
    if isinstance(stmt, (ast.WhileStmt, ast.DoWhileStmt)):
        replacement, n = _transform(stmt.body, factor, global_names)
        if replacement is not None:
            stmt.body = replacement
            inner += 1
        return None, inner
    if isinstance(stmt, ast.SwitchStmt):
        for case in stmt.cases:
            inner += _walk_stmt_list(case.body, factor, global_names)
        return None, inner
    if isinstance(stmt, ast.ForStmt):
        # children first (unroll innermost loops only -- unrolling a loop
        # that contains an already-unrolled loop would explode code size)
        replacement, n = (
            _transform(stmt.body, factor, global_names) if stmt.body else (None, 0)
        )
        if replacement is not None:
            stmt.body = replacement
            inner += 1
        inner += n
        if inner == 0:
            unrolled = _try_unroll(stmt, factor, global_names)
            if unrolled is not None:
                return unrolled, inner
        return None, inner
    return None, inner


def _try_unroll(
    loop: ast.ForStmt, factor: int, global_names: set[str]
) -> ast.BlockStmt | None:
    shape = _match_counted_loop(loop)
    if shape is None:
        return None
    var_name, cmp_op, bound_expr, step_value = shape
    body_stmts = (
        loop.body.body if isinstance(loop.body, ast.BlockStmt) else [loop.body]
    )
    if len(body_stmts) > MAX_BODY_STMTS:
        return None
    if not all(_body_allows_unroll(s, var_name) for s in body_stmts):
        return None
    # the bound must be provably invariant across the body: a literal, or a
    # name that the body never writes (and, if the body calls functions,
    # not a global the callee might change)
    if isinstance(bound_expr, ast.NumberExpr):
        pass
    elif isinstance(bound_expr, ast.NameExpr):
        if any(_expr_writes_anywhere(s, bound_expr.name) for s in body_stmts):
            return None
        if bound_expr.name in global_names and any(
            _stmt_has_call(s) for s in body_stmts
        ):
            return None
    else:
        return None
    # same caution for the induction variable when it is a global
    if var_name in global_names and any(_stmt_has_call(s) for s in body_stmts):
        return None
    if _expr_mentions_name(bound_expr, var_name):
        return None

    line = loop.line

    def make_step() -> ast.Stmt:
        return ast.ExprStmt(
            line=line,
            expr=ast.AssignExpr(
                line=line,
                op="+=",
                target=ast.NameExpr(line=line, name=var_name),
                value=ast.NumberExpr(line=line, value=step_value),
            ),
        )

    # main loop: cond  i + (U-1)*step  <cmp>  bound
    lookahead = ast.BinaryExpr(
        line=line,
        op="+",
        left=ast.NameExpr(line=line, name=var_name),
        right=ast.NumberExpr(line=line, value=(factor - 1) * step_value),
    )
    main_cond = ast.BinaryExpr(
        line=line, op=cmp_op, left=lookahead, right=copy.deepcopy(bound_expr)
    )
    main_body: list[ast.Stmt] = []
    for _ in range(factor):
        main_body.extend(copy.deepcopy(body_stmts))
        main_body.append(make_step())
    main_loop = ast.ForStmt(
        line=line,
        init=loop.init,
        cond=main_cond,
        step=None,
        body=ast.BlockStmt(line=line, body=main_body),
    )
    remainder = ast.ForStmt(
        line=line,
        init=None,
        cond=ast.BinaryExpr(
            line=line,
            op=cmp_op,
            left=ast.NameExpr(line=line, name=var_name),
            right=copy.deepcopy(bound_expr),
        ),
        step=ast.AssignExpr(
            line=line,
            op="+=",
            target=ast.NameExpr(line=line, name=var_name),
            value=ast.NumberExpr(line=line, value=step_value),
        ),
        body=ast.BlockStmt(line=line, body=copy.deepcopy(body_stmts)),
    )
    return ast.BlockStmt(line=line, body=[main_loop, remainder])


def _match_counted_loop(loop: ast.ForStmt):
    """Match ``for (...; i < bound; i += C)``; return (i, op, bound, C)."""
    cond = loop.cond
    if not (
        isinstance(cond, ast.BinaryExpr)
        and cond.op in ("<", "<=")
        and isinstance(cond.left, ast.NameExpr)
    ):
        return None
    var_name = cond.left.name
    step = loop.step
    step_value: int | None = None
    if isinstance(step, ast.IncDecExpr) and step.op == "++":
        if isinstance(step.operand, ast.NameExpr) and step.operand.name == var_name:
            step_value = 1
    elif isinstance(step, ast.AssignExpr) and step.op == "+=":
        if (
            isinstance(step.target, ast.NameExpr)
            and step.target.name == var_name
            and isinstance(step.value, ast.NumberExpr)
            and step.value.value > 0
        ):
            step_value = step.value.value
    elif isinstance(step, ast.AssignExpr) and step.op == "=":
        # i = i + C
        value = step.value
        if (
            isinstance(step.target, ast.NameExpr)
            and step.target.name == var_name
            and isinstance(value, ast.BinaryExpr)
            and value.op == "+"
            and isinstance(value.left, ast.NameExpr)
            and value.left.name == var_name
            and isinstance(value.right, ast.NumberExpr)
            and value.right.value > 0
        ):
            step_value = value.right.value
    if step_value is None:
        return None
    # the induction variable must be declared/assigned in init (or before)
    return var_name, cond.op, cond.right, step_value


def _body_allows_unroll(stmt: ast.Stmt, var_name: str) -> bool:
    """Reject bodies with control-flow escapes or writes to the induction var."""
    if isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt, ast.ReturnStmt)):
        return False
    if isinstance(stmt, ast.SwitchStmt):
        return False
    if isinstance(stmt, ast.BlockStmt):
        return all(_body_allows_unroll(s, var_name) for s in stmt.body)
    if isinstance(stmt, ast.IfStmt):
        children = [stmt.then_body, stmt.else_body]
        return all(
            _body_allows_unroll(c, var_name) for c in children if c is not None
        ) and not _expr_writes_name(stmt.cond, var_name)
    if isinstance(stmt, (ast.WhileStmt, ast.DoWhileStmt)):
        return _body_allows_unroll(stmt.body, var_name) and not _expr_writes_name(
            stmt.cond, var_name
        )
    if isinstance(stmt, ast.ForStmt):
        parts_ok = all(
            part is None or not _expr_writes_name(part, var_name)
            for part in (stmt.cond, stmt.step)
        )
        init_ok = stmt.init is None or _body_allows_unroll(stmt.init, var_name)
        return parts_ok and init_ok and _body_allows_unroll(stmt.body, var_name)
    if isinstance(stmt, ast.DeclStmt):
        if stmt.name == var_name:
            return False
        exprs = list(stmt.init_list or [])
        if stmt.init is not None:
            exprs.append(stmt.init)
        return not any(_expr_writes_name(e, var_name) for e in exprs)
    if isinstance(stmt, ast.ExprStmt):
        return stmt.expr is None or not _expr_writes_name(stmt.expr, var_name)
    return False


def _expr_writes_name(expr: ast.Expr, name: str) -> bool:
    """Does *expr* assign to or increment variable *name*?"""
    if expr is None:
        return False
    if isinstance(expr, ast.AssignExpr):
        if isinstance(expr.target, ast.NameExpr) and expr.target.name == name:
            return True
        return _expr_writes_name(expr.target, name) or _expr_writes_name(expr.value, name)
    if isinstance(expr, ast.IncDecExpr):
        if isinstance(expr.operand, ast.NameExpr) and expr.operand.name == name:
            return True
        return _expr_writes_name(expr.operand, name)
    if isinstance(expr, ast.UnaryExpr):
        if expr.op == "&" and isinstance(expr.operand, ast.NameExpr) and expr.operand.name == name:
            return True  # address taken: anything could happen
        return _expr_writes_name(expr.operand, name)
    if isinstance(expr, ast.BinaryExpr):
        return _expr_writes_name(expr.left, name) or _expr_writes_name(expr.right, name)
    if isinstance(expr, ast.ConditionalExpr):
        return any(
            _expr_writes_name(e, name)
            for e in (expr.cond, expr.then_expr, expr.else_expr)
        )
    if isinstance(expr, ast.IndexExpr):
        return _expr_writes_name(expr.base, name) or _expr_writes_name(expr.index, name)
    if isinstance(expr, ast.CallExpr):
        return any(_expr_writes_name(a, name) for a in expr.args)
    if isinstance(expr, ast.CastExpr):
        return _expr_writes_name(expr.operand, name)
    return False


def _expr_writes_anywhere(stmt: ast.Stmt, name: str) -> bool:
    """Does any expression inside *stmt* write variable *name*?"""
    if isinstance(stmt, ast.BlockStmt):
        return any(_expr_writes_anywhere(s, name) for s in stmt.body)
    if isinstance(stmt, ast.IfStmt):
        parts = [stmt.then_body, stmt.else_body]
        if _expr_writes_name(stmt.cond, name):
            return True
        return any(_expr_writes_anywhere(p, name) for p in parts if p is not None)
    if isinstance(stmt, (ast.WhileStmt, ast.DoWhileStmt)):
        return _expr_writes_name(stmt.cond, name) or _expr_writes_anywhere(stmt.body, name)
    if isinstance(stmt, ast.ForStmt):
        for part in (stmt.cond, stmt.step):
            if part is not None and _expr_writes_name(part, name):
                return True
        if stmt.init is not None and _expr_writes_anywhere(stmt.init, name):
            return True
        return _expr_writes_anywhere(stmt.body, name)
    if isinstance(stmt, ast.ExprStmt):
        return stmt.expr is not None and _expr_writes_name(stmt.expr, name)
    if isinstance(stmt, ast.DeclStmt):
        exprs = list(stmt.init_list or [])
        if stmt.init is not None:
            exprs.append(stmt.init)
        return stmt.name == name or any(_expr_writes_name(e, name) for e in exprs)
    if isinstance(stmt, ast.ReturnStmt):
        return stmt.value is not None and _expr_writes_name(stmt.value, name)
    return False


def _stmt_has_call(stmt: ast.Stmt) -> bool:
    if isinstance(stmt, ast.BlockStmt):
        return any(_stmt_has_call(s) for s in stmt.body)
    if isinstance(stmt, ast.IfStmt):
        parts = [p for p in (stmt.then_body, stmt.else_body) if p is not None]
        return _expr_has_call(stmt.cond) or any(_stmt_has_call(p) for p in parts)
    if isinstance(stmt, (ast.WhileStmt, ast.DoWhileStmt)):
        return _expr_has_call(stmt.cond) or _stmt_has_call(stmt.body)
    if isinstance(stmt, ast.ForStmt):
        exprs = [e for e in (stmt.cond, stmt.step) if e is not None]
        if any(_expr_has_call(e) for e in exprs):
            return True
        if stmt.init is not None and _stmt_has_call(stmt.init):
            return True
        return _stmt_has_call(stmt.body)
    if isinstance(stmt, ast.ExprStmt):
        return stmt.expr is not None and _expr_has_call(stmt.expr)
    if isinstance(stmt, ast.DeclStmt):
        exprs = list(stmt.init_list or [])
        if stmt.init is not None:
            exprs.append(stmt.init)
        return any(_expr_has_call(e) for e in exprs)
    if isinstance(stmt, ast.ReturnStmt):
        return stmt.value is not None and _expr_has_call(stmt.value)
    return False


def _expr_has_call(expr: ast.Expr) -> bool:
    if expr is None:
        return False
    if isinstance(expr, ast.CallExpr):
        return True
    if isinstance(expr, ast.BinaryExpr):
        return _expr_has_call(expr.left) or _expr_has_call(expr.right)
    if isinstance(expr, (ast.UnaryExpr, ast.CastExpr)):
        return _expr_has_call(expr.operand)
    if isinstance(expr, ast.IncDecExpr):
        return _expr_has_call(expr.operand)
    if isinstance(expr, ast.AssignExpr):
        return _expr_has_call(expr.target) or _expr_has_call(expr.value)
    if isinstance(expr, ast.ConditionalExpr):
        return any(_expr_has_call(e) for e in (expr.cond, expr.then_expr, expr.else_expr))
    if isinstance(expr, ast.IndexExpr):
        return _expr_has_call(expr.base) or _expr_has_call(expr.index)
    return False


def _expr_mentions_name(expr: ast.Expr, name: str) -> bool:
    if expr is None:
        return False
    if isinstance(expr, ast.NameExpr):
        return expr.name == name
    if isinstance(expr, ast.BinaryExpr):
        return _expr_mentions_name(expr.left, name) or _expr_mentions_name(expr.right, name)
    if isinstance(expr, ast.UnaryExpr):
        return _expr_mentions_name(expr.operand, name)
    if isinstance(expr, ast.IndexExpr):
        return _expr_mentions_name(expr.base, name) or _expr_mentions_name(expr.index, name)
    if isinstance(expr, ast.CallExpr):
        return any(_expr_mentions_name(a, name) for a in expr.args)
    if isinstance(expr, ast.CastExpr):
        return _expr_mentions_name(expr.operand, name)
    if isinstance(expr, (ast.AssignExpr, ast.IncDecExpr, ast.ConditionalExpr)):
        return True  # conservatively treat as mentioning
    return False
