"""Loop-invariant code motion (enabled at -O2).

Finds natural loops (back edges to a dominator), then hoists pure,
single-definition computations whose operands are defined outside the loop
to just before the loop header label.  Because the IR generator produces
single-entry loops entered by fall-through, placing hoisted instructions
immediately before the header label executes them exactly once on entry
and never on the back edge.
"""

from __future__ import annotations

from repro.compiler import ir

_HOISTABLE = (ir.Const, ir.LoadAddr, ir.SlotAddr, ir.BinOp, ir.UnOp, ir.Copy)


def _dominators(blocks: list[ir.Block]) -> list[set[int]]:
    """Classic iterative dominator computation; index 0 is the entry."""
    count = len(blocks)
    all_blocks = set(range(count))
    dom: list[set[int]] = [all_blocks.copy() for _ in range(count)]
    dom[0] = {0}
    changed = True
    while changed:
        changed = False
        for index in range(1, count):
            preds = blocks[index].preds
            if not preds:
                new = {index}
            else:
                new = set.intersection(*(dom[p] for p in preds)) | {index}
            if new != dom[index]:
                dom[index] = new
                changed = True
    return dom


def _natural_loop(blocks: list[ir.Block], header: int, latch: int) -> set[int]:
    """Blocks of the natural loop for back edge latch->header."""
    loop = {header, latch}
    stack = [latch]
    while stack:
        index = stack.pop()
        for pred in blocks[index].preds:
            if pred not in loop:
                loop.add(pred)
                stack.append(pred)
    return loop


def find_loops(blocks: list[ir.Block]) -> list[tuple[int, set[int]]]:
    """Return (header_index, loop_blocks) for each natural loop, innermost last."""
    dom = _dominators(blocks)
    loops: dict[int, set[int]] = {}
    for index, block in enumerate(blocks):
        for succ in block.succs:
            if succ in dom[index]:  # back edge index -> succ
                body = _natural_loop(blocks, succ, index)
                if succ in loops:
                    loops[succ] |= body
                else:
                    loops[succ] = body
    return sorted(loops.items(), key=lambda item: len(item[1]), reverse=True)


def hoist_loop_invariants(func: ir.Function) -> bool:
    blocks = ir.build_cfg(func)
    loops = find_loops(blocks)
    if not loops:
        return False

    # definition counts across the whole function (single-def check)
    def_counts: dict[ir.VReg, int] = {}
    for instr in func.instrs:
        for reg in instr.defs():
            def_counts[reg] = def_counts.get(reg, 0) + 1

    changed = False
    for header, loop_blocks in loops:
        header_block = blocks[header]
        # single-entry check: every non-back-edge predecessor must be the
        # lexically preceding block (our irgen guarantees this shape)
        outside_preds = [p for p in header_block.preds if p not in loop_blocks]
        if outside_preds != [header - 1] or header == 0:
            continue

        defined_in_loop: set[ir.VReg] = set()
        for index in loop_blocks:
            for instr in blocks[index].instrs:
                defined_in_loop.update(instr.defs())

        has_call = any(
            isinstance(instr, ir.Call)
            for index in loop_blocks
            for instr in blocks[index].instrs
        )

        hoisted: list[ir.Instr] = []
        hoisted_regs: set[ir.VReg] = set()
        for index in sorted(loop_blocks):
            block = blocks[index]
            kept: list[ir.Instr] = []
            for instr in block.instrs:
                if _is_invariant(
                    instr, defined_in_loop, hoisted_regs, def_counts, has_call
                ):
                    hoisted.append(instr)
                    hoisted_regs.update(instr.defs())
                    changed = True
                else:
                    kept.append(instr)
            block.instrs = kept

        if hoisted:
            # place at the end of the fall-through predecessor (runs once on
            # entry, skipped by back edges); keep any terminator last
            preheader = blocks[header - 1]
            if preheader.instrs and isinstance(preheader.instrs[-1], ir.TERMINATORS):
                position = len(preheader.instrs) - 1
                preheader.instrs[position:position] = hoisted
            else:
                preheader.instrs.extend(hoisted)

    func.instrs = ir.flatten_cfg(blocks)
    return changed


def _is_invariant(
    instr: ir.Instr,
    defined_in_loop: set[ir.VReg],
    hoisted_regs: set[ir.VReg],
    def_counts: dict[ir.VReg, int],
    has_call: bool,
) -> bool:
    if not isinstance(instr, _HOISTABLE):
        return False
    defs = instr.defs()
    if len(defs) != 1 or def_counts.get(defs[0], 0) != 1:
        return False
    for reg in instr.uses():
        if reg in defined_in_loop and reg not in hoisted_regs:
            return False
        if def_counts.get(reg, 0) != 1:
            return False
    if isinstance(instr, ir.BinOp) and instr.op in ("div", "divu", "rem", "remu"):
        # division can fault conceptually; keep it where it was
        return False
    return True
