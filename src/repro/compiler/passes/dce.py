"""Dead-code elimination: unused pure instructions and dead slot stores."""

from __future__ import annotations

from repro.compiler import ir

#: instruction types with no side effects beyond defining their destination
_PURE = (
    ir.Const,
    ir.Copy,
    ir.UnOp,
    ir.BinOp,
    ir.LoadAddr,
    ir.SlotAddr,
    ir.LoadSlot,
    ir.Load,  # no volatile semantics in mini-C
)


def eliminate_dead_code(func: ir.Function) -> bool:
    changed = False
    while True:
        used: set[ir.VReg] = set()
        for instr in func.instrs:
            used.update(instr.uses())
        loaded_slots = {
            instr.slot.index
            for instr in func.instrs
            if isinstance(instr, ir.LoadSlot)
        }
        address_taken_slots = {
            slot.index for slot in func.slots if slot.address_taken or slot.is_array
        }
        new_instrs: list[ir.Instr] = []
        removed = False
        for instr in func.instrs:
            if isinstance(instr, _PURE) and instr.defs() and not any(
                reg in used for reg in instr.defs()
            ):
                removed = True
                continue
            if (
                isinstance(instr, ir.StoreSlot)
                and instr.slot.index not in loaded_slots
                and instr.slot.index not in address_taken_slots
            ):
                removed = True
                continue
            new_instrs.append(instr)
        func.instrs = new_instrs
        if not removed:
            break
        changed = True
    # drop slots that are no longer referenced at all
    referenced: set[int] = set()
    for instr in func.instrs:
        if isinstance(instr, (ir.LoadSlot, ir.StoreSlot, ir.SlotAddr)):
            referenced.add(instr.slot.index)
    before = len(func.slots)
    func.slots = [slot for slot in func.slots if slot.index in referenced]
    return changed or len(func.slots) != before
