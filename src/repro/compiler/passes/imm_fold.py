"""Immediate folding: turn register-register operations into MIPS I-format
immediate forms where the constant operand fits.

This is what makes -O1 binaries look like real compiler output (addiu/andi/
slti instead of li+addu).  Note that the -O0 path skips this pass entirely,
leaving the naive li+op sequences the paper's decompiler cleans up.
"""

from __future__ import annotations

from repro.compiler import ir
from repro.compiler.passes.constfold import _single_def_consts
from repro.utils import to_signed32

#: ops whose immediate form takes a signed 16-bit value
_SIGNED_IMM_OPS = {"add", "sub", "lt", "ltu"}
#: ops whose immediate form takes an unsigned 16-bit value
_UNSIGNED_IMM_OPS = {"and", "or", "xor"}
#: shifts take a 5-bit amount
_SHIFT_OPS = {"shl", "shr", "sar"}
#: comparisons we can rewrite via slti/sltiu after swapping; keep simple:
#: only eq/ne against a constant benefit codegen directly
_CMP_EQ_OPS = {"eq", "ne"}


def _fits_signed16(value: int) -> bool:
    return -0x8000 <= value <= 0x7FFF


def _fits_unsigned16(value: int) -> bool:
    return 0 <= value <= 0xFFFF


def fold_immediates(func: ir.Function) -> bool:
    consts = _single_def_consts(func)
    changed = False
    for instr in func.instrs:
        if isinstance(instr, ir.BinOp):
            if isinstance(instr.b, ir.VReg) and instr.b in consts:
                value = to_signed32(consts[instr.b])
                if _immediate_legal(instr.op, value):
                    instr.b = ir.Imm(value)
                    changed = True
                    continue
            # commutative op with constant on the left: swap it to the right
            if (
                instr.op in ir.COMMUTATIVE_OPS
                and isinstance(instr.b, ir.VReg)
                and instr.a in consts
            ):
                value = to_signed32(consts[instr.a])
                if _immediate_legal(instr.op, value):
                    instr.a, instr.b = instr.b, ir.Imm(value)
                    changed = True
        elif isinstance(instr, ir.Branch):
            if isinstance(instr.b, ir.VReg) and instr.b in consts:
                value = to_signed32(consts[instr.b])
                # branches against zero map to beq/bne/blez/... with $zero;
                # other small constants still help codegen (li into $at).
                if value == 0 or _fits_signed16(value):
                    instr.b = ir.Imm(value)
                    changed = True
    return changed


def _immediate_legal(op: str, value: int) -> bool:
    if op in _SIGNED_IMM_OPS:
        if op == "sub":
            return _fits_signed16(-value)
        return _fits_signed16(value)
    if op in _UNSIGNED_IMM_OPS:
        return _fits_unsigned16(value)
    if op in _SHIFT_OPS:
        return 0 <= value <= 31
    if op in _CMP_EQ_OPS:
        return _fits_signed16(value)
    return False
