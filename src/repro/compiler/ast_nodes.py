"""AST node definitions for the mini-C language.

Nodes are plain dataclasses; the IR generator resolves names and types while
walking this tree (single-pass typed lowering, see irgen.py).  ``line`` is
kept on every node for error messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.ctypes import CType


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    line: int = 0


@dataclass
class NumberExpr(Expr):
    value: int = 0


@dataclass
class NameExpr(Expr):
    name: str = ""


@dataclass
class UnaryExpr(Expr):
    """op in {'-', '!', '~', '*', '&'}"""

    op: str = ""
    operand: Expr | None = None


@dataclass
class IncDecExpr(Expr):
    """``++x`` / ``x--`` etc.  op in {'++', '--'}; prefix selects value."""

    op: str = ""
    operand: Expr | None = None
    prefix: bool = True


@dataclass
class BinaryExpr(Expr):
    """op in {'+','-','*','/','%','<<','>>','&','|','^',
    '==','!=','<','<=','>','>=','&&','||'}"""

    op: str = ""
    left: Expr | None = None
    right: Expr | None = None


@dataclass
class AssignExpr(Expr):
    """op is '=' or a compound operator like '+='."""

    op: str = "="
    target: Expr | None = None
    value: Expr | None = None


@dataclass
class ConditionalExpr(Expr):
    cond: Expr | None = None
    then_expr: Expr | None = None
    else_expr: Expr | None = None


@dataclass
class IndexExpr(Expr):
    base: Expr | None = None
    index: Expr | None = None


@dataclass
class CallExpr(Expr):
    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class CastExpr(Expr):
    ctype: CType | None = None
    operand: Expr | None = None


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    line: int = 0


@dataclass
class ExprStmt(Stmt):
    expr: Expr | None = None


@dataclass
class DeclStmt(Stmt):
    """A local variable declaration (one declarator)."""

    name: str = ""
    ctype: CType | None = None
    init: Expr | None = None
    init_list: list[Expr] | None = None  # array initializer


@dataclass
class BlockStmt(Stmt):
    body: list[Stmt] = field(default_factory=list)


@dataclass
class IfStmt(Stmt):
    cond: Expr | None = None
    then_body: Stmt | None = None
    else_body: Stmt | None = None


@dataclass
class WhileStmt(Stmt):
    cond: Expr | None = None
    body: Stmt | None = None


@dataclass
class DoWhileStmt(Stmt):
    body: Stmt | None = None
    cond: Expr | None = None


@dataclass
class ForStmt(Stmt):
    init: Stmt | None = None  # DeclStmt or ExprStmt or None
    cond: Expr | None = None
    step: Expr | None = None
    body: Stmt | None = None


@dataclass
class SwitchCase:
    """One ``case value:`` (value None for ``default:``) and its statements."""

    value: int | None
    body: list[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class SwitchStmt(Stmt):
    scrutinee: Expr | None = None
    cases: list[SwitchCase] = field(default_factory=list)


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class ReturnStmt(Stmt):
    value: Expr | None = None


# ---------------------------------------------------------------------------
# declarations
# ---------------------------------------------------------------------------


@dataclass
class Param:
    name: str
    ctype: CType
    line: int = 0


@dataclass
class FunctionDecl:
    name: str
    return_type: CType
    params: list[Param]
    body: BlockStmt | None  # None for a prototype
    line: int = 0


@dataclass
class GlobalDecl:
    name: str
    ctype: CType
    init: Expr | None = None
    init_list: list[Expr] | None = None
    line: int = 0


@dataclass
class TranslationUnit:
    globals: list[GlobalDecl] = field(default_factory=list)
    functions: list[FunctionDecl] = field(default_factory=list)
