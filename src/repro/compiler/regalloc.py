"""Linear-scan register allocation over virtual registers.

Liveness is computed block-wise (iterative backward dataflow), then each
virtual register gets one conservative live interval over the linearized
instruction order.  Intervals crossing a call site must receive a
callee-saved register ($s0-$s7) or spill; others prefer caller-saved
($t0-$t7).  $t8/$t9 are reserved as spill scratch, $at as branch-compare
scratch, so the allocator never touches them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler import ir
from repro.isa.registers import Reg

#: allocatable caller-saved registers (jal-clobbered)
T_REGS = [int(r) for r in (Reg.T0, Reg.T1, Reg.T2, Reg.T3, Reg.T4, Reg.T5, Reg.T6, Reg.T7)]
#: allocatable callee-saved registers
S_REGS = [int(r) for r in (Reg.S0, Reg.S1, Reg.S2, Reg.S3, Reg.S4, Reg.S5, Reg.S6, Reg.S7)]


@dataclass
class Interval:
    vreg: ir.VReg
    start: int
    end: int
    crosses_call: bool = False


@dataclass
class Allocation:
    """Result of register allocation for one function."""

    #: vreg -> physical register number
    reg_of: dict[ir.VReg, int] = field(default_factory=dict)
    #: vreg -> spill slot ordinal (codegen assigns frame offsets)
    spill_of: dict[ir.VReg, int] = field(default_factory=dict)
    used_callee_saved: list[int] = field(default_factory=list)

    @property
    def spill_count(self) -> int:
        return len(set(self.spill_of.values()))


def compute_block_liveness(
    blocks: list[ir.Block],
) -> tuple[list[set[ir.VReg]], list[set[ir.VReg]]]:
    """Iterative live-in/live-out per block."""
    count = len(blocks)
    gen: list[set[ir.VReg]] = []
    kill: list[set[ir.VReg]] = []
    for block in blocks:
        use_set: set[ir.VReg] = set()
        def_set: set[ir.VReg] = set()
        for instr in block.instrs:
            for reg in instr.uses():
                if reg not in def_set:
                    use_set.add(reg)
            def_set.update(instr.defs())
        gen.append(use_set)
        kill.append(def_set)

    live_in: list[set[ir.VReg]] = [set() for _ in range(count)]
    live_out: list[set[ir.VReg]] = [set() for _ in range(count)]
    changed = True
    while changed:
        changed = False
        for index in range(count - 1, -1, -1):
            out: set[ir.VReg] = set()
            for succ in blocks[index].succs:
                out |= live_in[succ]
            new_in = gen[index] | (out - kill[index])
            if out != live_out[index] or new_in != live_in[index]:
                live_out[index] = out
                live_in[index] = new_in
                changed = True
    return live_in, live_out


def build_intervals(func: ir.Function) -> tuple[list[Interval], list[int]]:
    """Conservative live intervals over the linear instruction order."""
    blocks = ir.build_cfg(func)
    live_in, live_out = compute_block_liveness(blocks)

    starts: dict[ir.VReg, int] = {}
    ends: dict[ir.VReg, int] = {}
    call_sites: list[int] = []

    def touch(reg: ir.VReg, index: int) -> None:
        if reg not in starts or index < starts[reg]:
            starts[reg] = index
        if reg not in ends or index > ends[reg]:
            ends[reg] = index

    # parameters are defined by the prologue: pin their interval to entry
    for param in func.params:
        touch(param, 0)

    index = 0
    for block_index, block in enumerate(blocks):
        block_start = index
        block_end = index + max(0, len(block.instrs) - 1)
        for reg in live_in[block_index]:
            touch(reg, block_start)
        for instr in block.instrs:
            if isinstance(instr, ir.Call):
                call_sites.append(index)
            for reg in instr.uses():
                touch(reg, index)
            for reg in instr.defs():
                touch(reg, index)
            index += 1
        for reg in live_out[block_index]:
            touch(reg, block_end)

    intervals = []
    for reg, start in starts.items():
        end = ends[reg]
        crosses = any(start < site < end for site in call_sites)
        intervals.append(Interval(reg, start, end, crosses))
    intervals.sort(key=lambda iv: (iv.start, iv.end))
    return intervals, call_sites


def allocate(func: ir.Function) -> Allocation:
    """Run linear scan; every vreg ends up in reg_of or spill_of."""
    intervals, _ = build_intervals(func)
    allocation = Allocation()

    free_t = list(T_REGS)
    free_s = list(S_REGS)
    active: list[Interval] = []
    used_s: set[int] = set()
    next_spill = 0

    def expire(current_start: int) -> None:
        nonlocal active
        still_active = []
        for interval in active:
            if interval.end < current_start:
                reg = allocation.reg_of[interval.vreg]
                if reg in S_REGS:
                    free_s.append(reg)
                else:
                    free_t.append(reg)
            else:
                still_active.append(interval)
        active = still_active

    for interval in intervals:
        expire(interval.start)
        reg: int | None = None
        if interval.crosses_call:
            if free_s:
                reg = free_s.pop(0)
                used_s.add(reg)
        else:
            if free_t:
                reg = free_t.pop(0)
            elif free_s:
                reg = free_s.pop(0)
                used_s.add(reg)
        if reg is None:
            # classic linear-scan heuristic: evict the compatible active
            # interval that ends furthest away if it outlasts the current one
            candidates = [
                other
                for other in active
                if other.end > interval.end
                and (interval.crosses_call <= (allocation.reg_of[other.vreg] in S_REGS))
            ]
            if candidates:
                victim = max(candidates, key=lambda iv: iv.end)
                reg = allocation.reg_of.pop(victim.vreg)
                allocation.spill_of[victim.vreg] = next_spill
                next_spill += 1
                active.remove(victim)
                allocation.reg_of[interval.vreg] = reg
                active.append(interval)
            else:
                allocation.spill_of[interval.vreg] = next_spill
                next_spill += 1
        else:
            allocation.reg_of[interval.vreg] = reg
            active.append(interval)

    allocation.used_callee_saved = sorted(used_s)
    return allocation
