"""The mini-C type system: integers of three widths, pointers, arrays.

No floats and no structs -- none of the embedded kernels in the paper's
benchmark suites need them (see DESIGN.md section 5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CompileError


class CType:
    """Base class for mini-C types.  Subclasses define ``size`` in bytes."""

    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    def is_void(self) -> bool:
        return isinstance(self, VoidType)


@dataclass(frozen=True)
class VoidType(CType):
    size: int = 0

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class IntType(CType):
    """An integer type of 1, 2 or 4 bytes, signed or unsigned."""

    size: int
    signed: bool

    def __str__(self) -> str:
        names = {1: "char", 2: "short", 4: "int"}
        prefix = "" if self.signed else "unsigned "
        return prefix + names[self.size]

    @property
    def bits(self) -> int:
        return self.size * 8

    def min_value(self) -> int:
        return -(1 << (self.bits - 1)) if self.signed else 0

    def max_value(self) -> int:
        return (1 << (self.bits - 1)) - 1 if self.signed else (1 << self.bits) - 1

    def wrap(self, value: int) -> int:
        """Wrap a Python int into this type's value range (two's complement)."""
        value &= (1 << self.bits) - 1
        if self.signed and value > self.max_value():
            value -= 1 << self.bits
        return value


@dataclass(frozen=True)
class PointerType(CType):
    pointee: CType
    size: int = 4

    def __str__(self) -> str:
        return f"{self.pointee}*"


@dataclass(frozen=True)
class ArrayType(CType):
    element: CType
    length: int

    def __str__(self) -> str:
        return f"{self.element}[{self.length}]"

    @property
    def size(self) -> int:  # type: ignore[override]
        return self.element.size * self.length

    def decay(self) -> PointerType:
        """Array-to-pointer decay (C semantics in expressions)."""
        return PointerType(self.element)


VOID = VoidType()
INT = IntType(4, True)
UINT = IntType(4, False)
SHORT = IntType(2, True)
USHORT = IntType(2, False)
CHAR = IntType(1, True)
UCHAR = IntType(1, False)

_BASE_TYPES = {
    ("int",): INT,
    ("unsigned",): UINT,
    ("unsigned", "int"): UINT,
    ("signed",): INT,
    ("signed", "int"): INT,
    ("short",): SHORT,
    ("short", "int"): SHORT,
    ("signed", "short"): SHORT,
    ("unsigned", "short"): USHORT,
    ("unsigned", "short", "int"): USHORT,
    ("char",): CHAR,
    ("signed", "char"): CHAR,
    ("unsigned", "char"): UCHAR,
    ("void",): VOID,
}

TYPE_KEYWORDS = {"int", "unsigned", "signed", "short", "char", "void", "long"}


def base_type_from_keywords(words: tuple[str, ...], line: int) -> CType:
    """Resolve a sequence of type keywords ("unsigned short") to a CType.

    ``long`` is accepted as a synonym for ``int`` (both are 32-bit here),
    matching common embedded ABIs.
    """
    normalized = tuple(w for w in words if w != "long") or ("int",)
    ctype = _BASE_TYPES.get(normalized)
    if ctype is None:
        raise CompileError(f"unsupported type {' '.join(words)!r}", line)
    return ctype


def promote(ctype: CType) -> CType:
    """C integer promotion: sub-word integers widen to (unsigned) int."""
    if isinstance(ctype, IntType) and ctype.size < 4:
        return INT
    if isinstance(ctype, ArrayType):
        return ctype.decay()
    return ctype


def common_type(left: CType, right: CType, line: int) -> CType:
    """Usual arithmetic conversions for a binary operator."""
    left, right = promote(left), promote(right)
    if isinstance(left, PointerType) and right.is_integer():
        return left
    if isinstance(right, PointerType) and left.is_integer():
        return right
    if isinstance(left, PointerType) and isinstance(right, PointerType):
        return left
    if left.is_integer() and right.is_integer():
        assert isinstance(left, IntType) and isinstance(right, IntType)
        return UINT if (not left.signed or not right.signed) else INT
    raise CompileError(f"invalid operand types {left} and {right}", line)
