"""Three-address intermediate representation for the mini-C compiler.

A function is a *linear* list of instructions containing labels and explicit
control transfers; basic-block views are built on demand (:func:`build_cfg`).
Optimization passes rewrite the linear list, which keeps every pass simple
and auditable.

Operands are virtual registers (:class:`VReg`) or -- on the right-hand side
of selected operations after immediate folding -- literal :class:`Imm`
values that the code generator maps onto MIPS I-format immediates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

# ---------------------------------------------------------------------------
# operands
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VReg:
    """A virtual register.  ``hint`` is a debug name (variable it came from)."""

    id: int
    hint: str = ""

    def __str__(self) -> str:
        return f"%{self.id}" + (f"({self.hint})" if self.hint else "")


@dataclass(frozen=True)
class Imm:
    """A literal immediate operand (introduced by immediate folding)."""

    value: int

    def __str__(self) -> str:
        return f"#{self.value}"


Operand = VReg | Imm


@dataclass
class StackSlot:
    """One slot in the function's frame (local variable, array, or spill)."""

    index: int
    size: int
    name: str = ""
    is_array: bool = False
    address_taken: bool = False
    #: filled by the frame layouter in codegen
    offset: int = -1

    def __str__(self) -> str:
        return f"slot{self.index}({self.name or '?'}:{self.size})"


# ---------------------------------------------------------------------------
# instructions
# ---------------------------------------------------------------------------

#: binary operator names (shared vocabulary with the decompiler's CDFG)
BINARY_OPS = (
    "add", "sub", "mul", "div", "divu", "rem", "remu",
    "and", "or", "xor", "shl", "shr", "sar",
    "eq", "ne", "lt", "le", "gt", "ge", "ltu", "leu", "gtu", "geu",
)

#: comparison subset usable as a Branch condition
BRANCH_OPS = ("eq", "ne", "lt", "le", "gt", "ge", "ltu", "leu", "gtu", "geu")

COMMUTATIVE_OPS = frozenset({"add", "mul", "and", "or", "xor", "eq", "ne"})

#: maps each comparison to its negation (used when inverting branches)
NEGATED_CMP = {
    "eq": "ne", "ne": "eq",
    "lt": "ge", "ge": "lt", "le": "gt", "gt": "le",
    "ltu": "geu", "geu": "ltu", "leu": "gtu", "gtu": "leu",
}

#: maps each comparison to its operand-swapped equivalent
SWAPPED_CMP = {
    "eq": "eq", "ne": "ne",
    "lt": "gt", "gt": "lt", "le": "ge", "ge": "le",
    "ltu": "gtu", "gtu": "ltu", "leu": "geu", "geu": "leu",
}


@dataclass
class Instr:
    """Base class.  Subclasses define ``defs()`` and ``uses()``."""

    def defs(self) -> list[VReg]:
        return []

    def uses(self) -> list[VReg]:
        return []

    def replace_uses(self, mapping: dict[VReg, Operand]) -> None:
        """Substitute used vregs per *mapping* (Imm only where legal)."""


def _sub(operand: Operand, mapping: dict[VReg, Operand]) -> Operand:
    if isinstance(operand, VReg) and operand in mapping:
        return mapping[operand]
    return operand


def _sub_reg(operand: VReg, mapping: dict[VReg, Operand]) -> VReg:
    replacement = mapping.get(operand)
    if isinstance(replacement, VReg):
        return replacement
    return operand


@dataclass
class Const(Instr):
    dst: VReg
    value: int

    def defs(self):
        return [self.dst]

    def __str__(self):
        return f"{self.dst} = const {self.value}"


@dataclass
class Copy(Instr):
    dst: VReg
    src: VReg

    def defs(self):
        return [self.dst]

    def uses(self):
        return [self.src]

    def replace_uses(self, mapping):
        self.src = _sub_reg(self.src, mapping)

    def __str__(self):
        return f"{self.dst} = {self.src}"


@dataclass
class UnOp(Instr):
    """op in {'neg', 'not'} (bitwise not); logical-not lowers to eq-zero."""

    dst: VReg
    op: str
    src: VReg

    def defs(self):
        return [self.dst]

    def uses(self):
        return [self.src]

    def replace_uses(self, mapping):
        self.src = _sub_reg(self.src, mapping)

    def __str__(self):
        return f"{self.dst} = {self.op} {self.src}"


@dataclass
class BinOp(Instr):
    dst: VReg
    op: str
    a: VReg
    b: Operand

    def defs(self):
        return [self.dst]

    def uses(self):
        regs = [self.a]
        if isinstance(self.b, VReg):
            regs.append(self.b)
        return regs

    def replace_uses(self, mapping):
        self.a = _sub_reg(self.a, mapping)
        self.b = _sub(self.b, mapping)

    def __str__(self):
        return f"{self.dst} = {self.op} {self.a}, {self.b}"


@dataclass
class Load(Instr):
    """dst = *(base + offset), size in {1,2,4}, sign-extending if signed."""

    dst: VReg
    base: VReg
    offset: int
    size: int = 4
    signed: bool = True

    def defs(self):
        return [self.dst]

    def uses(self):
        return [self.base]

    def replace_uses(self, mapping):
        self.base = _sub_reg(self.base, mapping)

    def __str__(self):
        sign = "s" if self.signed else "u"
        return f"{self.dst} = load{self.size}{sign} [{self.base}+{self.offset}]"


@dataclass
class Store(Instr):
    """*(base + offset) = src, size in {1,2,4}."""

    src: VReg
    base: VReg
    offset: int
    size: int = 4

    def uses(self):
        return [self.src, self.base]

    def replace_uses(self, mapping):
        self.src = _sub_reg(self.src, mapping)
        self.base = _sub_reg(self.base, mapping)

    def __str__(self):
        return f"store{self.size} [{self.base}+{self.offset}] = {self.src}"


@dataclass
class LoadAddr(Instr):
    """dst = &global_symbol + offset."""

    dst: VReg
    symbol: str
    offset: int = 0

    def defs(self):
        return [self.dst]

    def __str__(self):
        return f"{self.dst} = &{self.symbol}+{self.offset}"


@dataclass
class SlotAddr(Instr):
    """dst = address of a stack slot (local array or address-taken local)."""

    dst: VReg
    slot: StackSlot

    def defs(self):
        return [self.dst]

    def __str__(self):
        return f"{self.dst} = &{self.slot}"


@dataclass
class LoadSlot(Instr):
    """dst = 32-bit value of a (scalar) stack slot."""

    dst: VReg
    slot: StackSlot

    def defs(self):
        return [self.dst]

    def __str__(self):
        return f"{self.dst} = {self.slot}"


@dataclass
class StoreSlot(Instr):
    """stack slot = src (32-bit)."""

    src: VReg
    slot: StackSlot

    def uses(self):
        return [self.src]

    def replace_uses(self, mapping):
        self.src = _sub_reg(self.src, mapping)

    def __str__(self):
        return f"{self.slot} = {self.src}"


@dataclass
class Label(Instr):
    name: str

    def __str__(self):
        return f"{self.name}:"


@dataclass
class Jump(Instr):
    target: str

    def __str__(self):
        return f"jump {self.target}"


@dataclass
class Branch(Instr):
    """if (a op b) jump target; else fall through."""

    op: str
    a: VReg
    b: Operand
    target: str

    def uses(self):
        regs = [self.a]
        if isinstance(self.b, VReg):
            regs.append(self.b)
        return regs

    def replace_uses(self, mapping):
        self.a = _sub_reg(self.a, mapping)
        self.b = _sub(self.b, mapping)

    def __str__(self):
        return f"if {self.op} {self.a}, {self.b} jump {self.target}"


@dataclass
class SwitchJump(Instr):
    """Indirect jump through a dense jump table.

    ``index`` has already been normalized to [0, len(labels)) by preceding
    bounds-check code; codegen emits the sll/la/addu/lw/jr sequence and the
    ``.data`` table.  This is the construct that defeats CDFG recovery.
    """

    index: VReg
    labels: list[str]
    table_name: str

    def uses(self):
        return [self.index]

    def replace_uses(self, mapping):
        self.index = _sub_reg(self.index, mapping)

    def __str__(self):
        return f"switch {self.index} -> {self.table_name}{self.labels}"


@dataclass
class Call(Instr):
    dst: VReg | None
    name: str
    args: list[VReg] = field(default_factory=list)

    def defs(self):
        return [self.dst] if self.dst is not None else []

    def uses(self):
        return list(self.args)

    def replace_uses(self, mapping):
        self.args = [_sub_reg(arg, mapping) for arg in self.args]

    def __str__(self):
        prefix = f"{self.dst} = " if self.dst else ""
        return f"{prefix}call {self.name}({', '.join(map(str, self.args))})"


@dataclass
class Return(Instr):
    src: VReg | None = None

    def uses(self):
        return [self.src] if self.src is not None else []

    def replace_uses(self, mapping):
        if self.src is not None:
            self.src = _sub_reg(self.src, mapping)

    def __str__(self):
        return f"return {self.src if self.src else ''}".rstrip()


TERMINATORS = (Jump, Branch, SwitchJump, Return)


# ---------------------------------------------------------------------------
# containers
# ---------------------------------------------------------------------------


@dataclass
class Function:
    name: str
    params: list[VReg]
    instrs: list[Instr] = field(default_factory=list)
    slots: list[StackSlot] = field(default_factory=list)
    returns_value: bool = False
    _next_vreg: int = 0
    _next_label: int = 0

    def new_vreg(self, hint: str = "") -> VReg:
        reg = VReg(self._next_vreg, hint)
        self._next_vreg += 1
        return reg

    def new_label(self, stem: str) -> str:
        name = f".L{self.name}_{stem}_{self._next_label}"
        self._next_label += 1
        return name

    def new_slot(self, size: int, name: str = "", is_array: bool = False) -> StackSlot:
        slot = StackSlot(index=len(self.slots), size=size, name=name, is_array=is_array)
        self.slots.append(slot)
        return slot

    def dump(self) -> str:
        lines = [f"func {self.name}({', '.join(map(str, self.params))}):"]
        for instr in self.instrs:
            indent = "" if isinstance(instr, Label) else "  "
            lines.append(indent + str(instr))
        return "\n".join(lines)


@dataclass
class GlobalVar:
    """A global variable with its initialized words/bytes."""

    name: str
    size: int
    element_size: int = 4
    init_values: list[int] = field(default_factory=list)  # element-sized values

    @property
    def is_array(self) -> bool:
        return self.size > self.element_size


@dataclass
class Module:
    functions: dict[str, Function] = field(default_factory=dict)
    globals: dict[str, GlobalVar] = field(default_factory=dict)

    def dump(self) -> str:
        parts = [func.dump() for func in self.functions.values()]
        return "\n\n".join(parts)


# ---------------------------------------------------------------------------
# CFG view
# ---------------------------------------------------------------------------


@dataclass
class Block:
    """A basic block view over a slice of Function.instrs."""

    label: str | None
    instrs: list[Instr]
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)
    index: int = 0


_block_counter = itertools.count()


def build_cfg(func: Function) -> list[Block]:
    """Partition *func* into basic blocks and connect the edges."""
    blocks: list[Block] = []
    current: list[Instr] = []
    current_label: str | None = None

    def flush() -> None:
        nonlocal current, current_label
        if current or current_label is not None:
            blocks.append(Block(label=current_label, instrs=current))
            current = []
            current_label = None

    for instr in func.instrs:
        if isinstance(instr, Label):
            flush()
            current_label = instr.name
            current.append(instr)
        else:
            current.append(instr)
            if isinstance(instr, TERMINATORS):
                flush()
    flush()

    label_to_block = {
        block.label: index for index, block in enumerate(blocks) if block.label
    }
    for index, block in enumerate(blocks):
        block.index = index
        last = block.instrs[-1] if block.instrs else None
        succs: list[int] = []
        if isinstance(last, Jump):
            succs.append(label_to_block[last.target])
        elif isinstance(last, Branch):
            succs.append(label_to_block[last.target])
            if index + 1 < len(blocks):
                succs.append(index + 1)
        elif isinstance(last, SwitchJump):
            succs.extend(label_to_block[name] for name in last.labels)
        elif isinstance(last, Return):
            pass
        else:
            if index + 1 < len(blocks):
                succs.append(index + 1)
        block.succs = succs
    for index, block in enumerate(blocks):
        for succ in block.succs:
            blocks[succ].preds.append(index)
    return blocks


def flatten_cfg(blocks: list[Block]) -> list[Instr]:
    """Rebuild the linear instruction list from (possibly edited) blocks."""
    instrs: list[Instr] = []
    for block in blocks:
        instrs.extend(block.instrs)
    return instrs
