"""Speedup and energy arithmetic for a partitioned application.

Turns (simulated software cycles, selected hardware kernels) into the
paper's reported metrics: application speedup, kernel speedup, energy
savings, and total hardware area.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.platform.platform import Platform

if TYPE_CHECKING:  # avoid a circular import; Candidate is only a type here
    from repro.partition.estimator import Candidate


@dataclass
class KernelMetrics:
    name: str
    function: str
    header_address: int
    sw_seconds: float
    hw_seconds: float
    area_gates: float
    clock_mhz: float
    localized: bool
    iterations: int
    invocations: int
    partition_step: int = 0

    @property
    def speedup(self) -> float:
        return self.sw_seconds / self.hw_seconds if self.hw_seconds > 0 else 0.0


@dataclass
class ApplicationMetrics:
    platform_name: str
    cpu_clock_mhz: float
    sw_seconds: float
    hw_seconds: float
    kernels: list[KernelMetrics] = field(default_factory=list)
    energy_sw_mj: float = 0.0
    energy_hw_mj: float = 0.0
    area_gates: float = 0.0

    @property
    def app_speedup(self) -> float:
        return self.sw_seconds / self.hw_seconds if self.hw_seconds > 0 else 1.0

    @property
    def kernel_speedup(self) -> float:
        """Combined kernel speedup (total kernel sw time / hw time)."""
        sw = sum(k.sw_seconds for k in self.kernels)
        hw = sum(k.hw_seconds for k in self.kernels)
        return sw / hw if hw > 0 else 1.0

    @property
    def energy_savings(self) -> float:
        if self.energy_sw_mj <= 0:
            return 0.0
        return 1.0 - self.energy_hw_mj / self.energy_sw_mj

    @property
    def kernel_fraction(self) -> float:
        """Fraction of software time covered by the hardware partition."""
        if self.sw_seconds <= 0:
            return 0.0
        return sum(k.sw_seconds for k in self.kernels) / self.sw_seconds


def evaluate_partition(
    platform: Platform,
    total_cycles: int,
    selected: list[Candidate],
    step_of: dict[str, int] | None = None,
) -> ApplicationMetrics:
    """Compute application metrics for a chosen partition."""
    from repro.partition.estimator import kernel_hw_seconds

    step_of = step_of or {}
    sw_seconds = platform.cpu_seconds(total_cycles)

    kernels: list[KernelMetrics] = []
    fpga_busy_seconds = 0.0
    cpu_overhead_cycles = 0.0
    fpga_dynamic_mj = 0.0
    total_area = 0.0
    kernel_sw_cycles = 0.0

    for candidate in selected:
        hw_seconds = kernel_hw_seconds(platform, candidate.kernel, candidate.profile)
        metrics = KernelMetrics(
            name=candidate.name,
            function=candidate.function.name,
            header_address=candidate.profile.header_address,
            sw_seconds=platform.cpu_seconds(candidate.profile.sw_cycles),
            hw_seconds=hw_seconds,
            area_gates=candidate.kernel.area_gates,
            clock_mhz=candidate.kernel.clock_mhz,
            localized=candidate.kernel.localized,
            iterations=candidate.profile.iterations,
            invocations=candidate.profile.invocations,
            partition_step=step_of.get(candidate.name, 0),
        )
        kernels.append(metrics)
        kernel_sw_cycles += candidate.profile.sw_cycles
        total_area += candidate.kernel.area_gates

        # split the kernel's wall time into FPGA-busy and CPU-overhead parts
        overhead_cycles = (
            candidate.profile.invocations * platform.invocation_overhead_cycles
        )
        if candidate.kernel.localized and candidate.kernel.bram_bytes:
            overhead_cycles += (
                2 * (candidate.kernel.bram_bytes / 4) * platform.migration_cycles_per_word
            )
        cpu_overhead_cycles += overhead_cycles
        fpga_busy = hw_seconds - overhead_cycles / (platform.cpu_clock_mhz * 1e6)
        fpga_busy_seconds += max(0.0, fpga_busy)
        dynamic_mw = platform.fpga_power.power_mw(
            candidate.kernel.area_gates, candidate.kernel.clock_mhz
        ) - platform.fpga_power.static_mw
        fpga_dynamic_mj += dynamic_mw * max(0.0, fpga_busy)  # mW x s = mJ

    cpu_active_cycles = total_cycles - kernel_sw_cycles + cpu_overhead_cycles
    cpu_active_seconds = platform.cpu_seconds(cpu_active_cycles)
    hw_seconds_total = cpu_active_seconds + fpga_busy_seconds

    active_mw = platform.cpu_power.active_mw(platform.cpu_clock_mhz)
    idle_mw = platform.cpu_power.idle_mw(platform.cpu_clock_mhz)

    energy_sw_mj = active_mw * sw_seconds  # mW x s = mJ
    energy_hw_mj = (
        active_mw * cpu_active_seconds
        + idle_mw * fpga_busy_seconds
        + fpga_dynamic_mj
        + platform.fpga_power.static_mw * hw_seconds_total
    )

    return ApplicationMetrics(
        platform_name=platform.name,
        cpu_clock_mhz=platform.cpu_clock_mhz,
        sw_seconds=sw_seconds,
        hw_seconds=hw_seconds_total,
        kernels=kernels,
        energy_sw_mj=energy_sw_mj,
        energy_hw_mj=energy_hw_mj,
        area_gates=total_area,
    )
