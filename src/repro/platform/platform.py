"""Platform definition: CPU clock, FPGA device, communication costs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.cpu import CpiModel
from repro.synth.fpga import DEFAULT_DEVICE, FpgaDevice
from repro.platform.power import CpuPowerModel, FpgaPowerModel


@dataclass(frozen=True)
class Platform:
    """One configuration of the hypothetical MIPS/Virtex-II platform."""

    name: str
    cpu_clock_mhz: float
    device: FpgaDevice = DEFAULT_DEVICE
    cpi: CpiModel = field(default_factory=CpiModel)
    cpu_power: CpuPowerModel = field(default_factory=CpuPowerModel)
    fpga_power: FpgaPowerModel = field(default_factory=FpgaPowerModel)
    #: CPU cycles to start a kernel and collect its results (register
    #: handshake over the on-chip bus)
    invocation_overhead_cycles: int = 30
    #: one-time CPU cycles per word to migrate a localized data region into
    #: FPGA block RAM (and dirty regions back) per kernel *activation phase*
    migration_cycles_per_word: int = 2

    def cpu_seconds(self, cycles: float) -> float:
        return cycles / (self.cpu_clock_mhz * 1e6)


MIPS_40MHZ = Platform(name="MIPS-40MHz + Virtex-II", cpu_clock_mhz=40.0)
MIPS_200MHZ = Platform(name="MIPS-200MHz + Virtex-II", cpu_clock_mhz=200.0)
MIPS_400MHZ = Platform(name="MIPS-400MHz + Virtex-II", cpu_clock_mhz=400.0)
