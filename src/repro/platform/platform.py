"""Platform definition: CPU clock, FPGA device, communication costs.

Two core families are modeled:

* **hard cores** -- the paper's hypothetical ASIC MIPS next to a Virtex-II
  fabric (40/200/400 MHz), and
* **soft cores** -- MicroBlaze/Nios-style processors synthesized *into* the
  FPGA fabric, following Lysecky & Vahid's dynamic-partitioning study of
  soft processor cores.  A soft core runs much slower (tens of MHz), has no
  hardware divider (serial divide), and -- crucially for partitioning --
  occupies part of the FPGA itself, so less fabric is left for kernels.
  :attr:`Platform.capacity_gates` is the partitioners' area budget and
  already nets out the core's own footprint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.cpu import CpiModel
from repro.synth.fpga import DEFAULT_DEVICE, FpgaDevice
from repro.platform.devices import DeviceSpec, cpu_device, fabric_device
from repro.platform.power import CpuPowerModel, FpgaPowerModel


@dataclass(frozen=True)
class Platform:
    """One configuration of the hypothetical MIPS/Virtex-II platform."""

    name: str
    cpu_clock_mhz: float
    device: FpgaDevice = DEFAULT_DEVICE
    cpi: CpiModel = field(default_factory=CpiModel)
    cpu_power: CpuPowerModel = field(default_factory=CpuPowerModel)
    fpga_power: FpgaPowerModel = field(default_factory=FpgaPowerModel)
    #: CPU cycles to start a kernel and collect its results (register
    #: handshake over the on-chip bus)
    invocation_overhead_cycles: int = 30
    #: one-time CPU cycles per word to migrate a localized data region into
    #: FPGA block RAM (and dirty regions back) per kernel *activation phase*
    migration_cycles_per_word: int = 2
    #: "hard" (ASIC CPU next to the FPGA) or "soft" (CPU in the fabric)
    core: str = "hard"
    #: fabric consumed by the soft core itself (0 for hard cores)
    core_area_gates: float = 0.0
    #: partial-reconfiguration regions the kernel fabric is split into.
    #: 0 models a monolithic fabric (the PR 3 behavior: reconfiguration is
    #: charged once per placed kernel); N > 0 splits :attr:`capacity_gates`
    #: into N equal regions -- a kernel occupies whole regions, and the
    #: dynamic controller charges ``reconfig_cycles`` per *changed region*
    #: instead of per kernel.
    fabric_regions: int = 0

    def cpu_seconds(self, cycles: float) -> float:
        return cycles / (self.cpu_clock_mhz * 1e6)

    @property
    def capacity_gates(self) -> float:
        """FPGA area available to kernels: the device minus the soft core."""
        return max(0.0, self.device.capacity_gates - self.core_area_gates)

    @property
    def region_gates(self) -> float:
        """Gates per partial-reconfiguration region (0.0 when monolithic)."""
        if self.fabric_regions <= 0:
            return 0.0
        return self.capacity_gates / self.fabric_regions

    @property
    def devices(self) -> tuple[DeviceSpec, ...]:
        """Placement-facing device list: the CPU plus the fabric region(s).

        A monolithic fabric (``fabric_regions == 0``) is one fabric device
        carrying the whole kernel budget; N partial-reconfiguration regions
        are N fabric devices of :attr:`region_gates` each.  CGRA grids and
        extra soft-core slots become additional entries here -- the
        partitioning pipeline never hard-codes a device count.
        """
        cpu = cpu_device(self.cpu_clock_mhz)
        if self.fabric_regions <= 0:
            return (cpu, fabric_device(
                0, self.capacity_gates, self.device.max_clock_mhz,
                self.device.bram_bytes,
            ))
        gates = self.region_gates
        return (cpu,) + tuple(
            fabric_device(i, gates, self.device.max_clock_mhz,
                          self.device.bram_bytes)
            for i in range(self.fabric_regions)
        )

    def with_regions(self, regions: int) -> "Platform":
        """This platform with the fabric split into *regions* PR regions."""
        from dataclasses import replace

        if regions < 0:
            raise ValueError(
                f"fabric_regions must be >= 0, got {regions} "
                "(0 = monolithic fabric)"
            )
        return replace(
            self,
            name=f"{self.name} [{regions} PR regions]" if regions else self.name,
            fabric_regions=regions,
        )


MIPS_40MHZ = Platform(name="MIPS-40MHz + Virtex-II", cpu_clock_mhz=40.0)
MIPS_200MHZ = Platform(name="MIPS-200MHz + Virtex-II", cpu_clock_mhz=200.0)
MIPS_400MHZ = Platform(name="MIPS-400MHz + Virtex-II", cpu_clock_mhz=400.0)

#: soft cores: no hardware divider (bit-serial divide), two-cycle multiply
#: via fabric MULT blocks; the memory system is the same on-chip SRAM bus.
_SOFTCORE_CPI = CpiModel(mult=2, div=34)

#: MicroBlaze-class soft core on the same Virtex-II: ~85 MHz, ~28 k
#: equivalent gates of fabric, and worse energy per cycle than an ASIC core
#: (LUT-based datapaths toggle far more capacitance per operation).
SOFTCORE_85MHZ = Platform(
    name="SoftCore-85MHz (MicroBlaze-style, in-fabric) + Virtex-II",
    cpu_clock_mhz=85.0,
    cpi=_SOFTCORE_CPI,
    cpu_power=CpuPowerModel(active_mw_per_mhz=2.4, base_mw=20.0, idle_fraction=0.6),
    core="soft",
    core_area_gates=28_000.0,
)

#: Nios/picoblaze-class economy configuration: half the clock, smaller core.
SOFTCORE_50MHZ = Platform(
    name="SoftCore-50MHz (economy, in-fabric) + Virtex-II",
    cpu_clock_mhz=50.0,
    cpi=_SOFTCORE_CPI,
    cpu_power=CpuPowerModel(active_mw_per_mhz=2.0, base_mw=15.0, idle_fraction=0.6),
    core="soft",
    core_area_gates=16_000.0,
)

SOFT_CORES = [SOFTCORE_85MHZ, SOFTCORE_50MHZ]

#: CLI/service platform registry: the short names `python -m repro sweep`,
#: `python -m repro dynamic` and the partitioning service accept on the wire
NAMED_PLATFORMS: dict[str, Platform] = {
    "mips40": MIPS_40MHZ,
    "mips200": MIPS_200MHZ,
    "mips400": MIPS_400MHZ,
    "softcore85": SOFTCORE_85MHZ,
    "softcore50": SOFTCORE_50MHZ,
}
