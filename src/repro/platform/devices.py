"""Device inventory of a platform: the units placement can target.

The paper's platform is a binary CPU/FPGA pair, but the partitioning
pipeline places kernels over an explicit *device list*: the CPU plus
one-or-more fabric regions today, CGRA datapaths or extra soft-core slots
tomorrow -- they are just more entries.  :class:`DeviceSpec` is the
placement-facing view of one such unit; :attr:`repro.platform.platform.
Platform.devices` derives the list from the platform's fabric
configuration, and the per-device cost models in
:mod:`repro.partition.costmodels` are looked up by :attr:`DeviceSpec.kind`.
"""

from __future__ import annotations

from dataclasses import dataclass

#: device kinds with built-in cost models (see repro.partition.costmodels)
CPU = "cpu"
FABRIC = "fabric"
CGRA = "cgra"


@dataclass(frozen=True)
class DeviceSpec:
    """One placement target: the CPU, a fabric region, a CGRA grid, ...

    ``capacity_gates`` is the area budget placement must respect on this
    device; the CPU carries 0.0 (software costs no fabric) and is always
    the fallback target for unplaced kernels.
    """

    name: str              # unique within one platform: "cpu", "fabric0", ...
    kind: str              # cost-model key: "cpu" | "fabric" | "cgra" | ...
    capacity_gates: float  # area budget for kernels (0.0 for the CPU)
    clock_mhz: float       # device clock ceiling (CPU clock for the CPU)
    bram_bytes: int = 0    # on-chip RAM reachable from this device
    index: int = 0         # ordinal among same-kind devices (fabric0, 1, ..)

    @property
    def is_cpu(self) -> bool:
        return self.kind == CPU

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_cpu:
            return f"{self.name} ({self.clock_mhz:.0f} MHz)"
        return (f"{self.name} ({self.kind}, "
                f"{self.capacity_gates:,.0f} gates)")


def cpu_device(clock_mhz: float) -> DeviceSpec:
    return DeviceSpec(name=CPU, kind=CPU, capacity_gates=0.0,
                      clock_mhz=clock_mhz)


def fabric_device(
    index: int, capacity_gates: float, clock_mhz: float, bram_bytes: int = 0
) -> DeviceSpec:
    return DeviceSpec(
        name=f"fabric{index}", kind=FABRIC, capacity_gates=capacity_gates,
        clock_mhz=clock_mhz, bram_bytes=bram_bytes, index=index,
    )


def cgra_device(
    index: int, capacity_gates: float, clock_mhz: float = 150.0
) -> DeviceSpec:
    """A coarse-grained reconfigurable array slot (word-level ALU grid).

    Galanis et al. style: word-level datapaths amortize the per-bit LUT
    overhead, so the same kernel packs into fewer equivalent gates and the
    grid clocks at a fixed word-level rate rather than the datapath-limited
    LUT clock.  The cost model in :mod:`repro.partition.costmodels` applies
    those curves; the spec just carries the budget.
    """
    return DeviceSpec(
        name=f"cgra{index}", kind=CGRA, capacity_gates=capacity_gates,
        clock_mhz=clock_mhz, index=index,
    )
