"""The hypothetical microprocessor/FPGA platform model.

The paper evaluates on "a hypothetical platform consisting of a MIPS
microprocessor and Xilinx Virtex II FPGA", swept over CPU clocks of 40, 200
and 400 MHz.  This package models exactly that: CPU clock and power, FPGA
power, kernel invocation overhead, and the speedup/energy arithmetic that
turns simulator cycle counts plus synthesized kernels into the paper's
headline metrics.
"""

from repro.platform.platform import (
    MIPS_200MHZ,
    MIPS_400MHZ,
    MIPS_40MHZ,
    NAMED_PLATFORMS,
    SOFT_CORES,
    SOFTCORE_50MHZ,
    SOFTCORE_85MHZ,
    Platform,
)
from repro.platform.devices import DeviceSpec, cgra_device, cpu_device, fabric_device
from repro.platform.power import CpuPowerModel, FpgaPowerModel
from repro.platform.metrics import (
    ApplicationMetrics,
    KernelMetrics,
    evaluate_partition,
)

__all__ = [
    "ApplicationMetrics",
    "CpuPowerModel",
    "DeviceSpec",
    "cgra_device",
    "cpu_device",
    "fabric_device",
    "FpgaPowerModel",
    "KernelMetrics",
    "MIPS_200MHZ",
    "MIPS_400MHZ",
    "MIPS_40MHZ",
    "NAMED_PLATFORMS",
    "SOFT_CORES",
    "SOFTCORE_50MHZ",
    "SOFTCORE_85MHZ",
    "Platform",
    "evaluate_partition",
]
