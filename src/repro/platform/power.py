"""Power models for the hypothetical MIPS + Virtex-II platform.

Constants follow embedded-processor data of the paper's era:

* MIPS32-class cores ran at roughly 1 mW/MHz active in 180 nm, with a
  deep-sleep/idle state around a tenth of that while waiting on a
  coprocessor,
* FPGA dynamic power scales with toggling logic x clock; the per-gate-MHz
  constant is set so a ~25 k-gate kernel at ~100 MHz burns on the order of
  a hundred mW -- consistent with Virtex-II estimates -- plus static power.

Only *ratios* matter for the reproduced claims (energy savings percent);
the absolute watt values are documentation.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CpuPowerModel:
    """Active/idle power of the MIPS core as a function of clock."""

    active_mw_per_mhz: float = 1.0
    base_mw: float = 10.0
    #: waiting-for-FPGA state: clock gating stops the pipeline but the bus
    #: interface, timers and the memory system stay powered (calibrated
    #: once against the paper's 200 MHz energy average; see EXPERIMENTS.md)
    idle_fraction: float = 0.55

    def active_mw(self, clock_mhz: float) -> float:
        return self.base_mw + self.active_mw_per_mhz * clock_mhz

    def idle_mw(self, clock_mhz: float) -> float:
        return self.idle_fraction * self.active_mw(clock_mhz)


@dataclass(frozen=True)
class FpgaPowerModel:
    """FPGA power: static + dynamic proportional to gates x clock."""

    static_mw: float = 25.0
    dynamic_mw_per_kgate_mhz: float = 0.12
    #: fraction of the configured logic toggling per cycle
    activity: float = 0.25

    def power_mw(self, gates: float, clock_mhz: float) -> float:
        dynamic = (
            self.dynamic_mw_per_kgate_mhz * (gates / 1000.0) * clock_mhz * self.activity
        )
        return self.static_mw + dynamic
