"""Blocking client for the partitioning service.

Used by ``python -m repro submit``, the load-generator benchmark, and the
tests.  One client = one connection; events for the client's jobs stream
back on it.  The client validates the protocol's per-job ``seq`` ordering
as it reads -- out-of-order delivery is a server bug worth failing loudly
on, and CI's ``service-smoke`` leans on exactly that check.
"""

from __future__ import annotations

import socket
import time
from typing import Callable, Iterable

from repro.service import protocol

__all__ = ["ServiceClient", "ServiceError", "FINAL_EVENTS"]

#: events that end a job's stream
FINAL_EVENTS = frozenset(
    {"done", "error", "rejected", "cancelled", "timeout"}
)


class ServiceError(RuntimeError):
    """Connection/protocol-level failure talking to the service."""


class ServiceClient:
    """Newline-delimited JSON over TCP or a unix socket, blocking."""

    def __init__(self, host: str = "127.0.0.1",
                 port: int = protocol.DEFAULT_PORT,
                 socket_path: str | None = None,
                 timeout: float = 300.0):
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._file = None
        #: job id -> next expected seq (the ordering assertion)
        self._next_seq: dict[int, int] = {}

    # -- connection ----------------------------------------------------

    def connect(self, wait_ready: float = 0.0) -> "ServiceClient":
        """Connect, optionally retrying for *wait_ready* seconds (lets CI
        race a just-forked server without sleep loops in shell)."""
        deadline = time.monotonic() + wait_ready
        while True:
            try:
                if self.socket_path:
                    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                    sock.settimeout(self.timeout)
                    sock.connect(self.socket_path)
                else:
                    sock = socket.create_connection(
                        (self.host, self.port), timeout=self.timeout
                    )
                break
            except OSError as exc:
                if time.monotonic() >= deadline:
                    raise ServiceError(
                        f"cannot reach service at {self.where()}: {exc}"
                    ) from exc
                time.sleep(0.1)
        self._sock = sock
        self._file = sock.makefile("rwb")
        return self

    def where(self) -> str:
        if self.socket_path:
            return f"unix:{self.socket_path}"
        return f"{self.host}:{self.port}"

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        if self._sock is None:
            self.connect()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- wire ----------------------------------------------------------

    def send(self, payload: dict) -> None:
        if self._file is None:
            raise ServiceError("not connected")
        try:
            self._file.write(protocol.encode(payload))
            self._file.flush()
        except OSError as exc:
            raise ServiceError(f"send failed: {exc}") from exc

    def read_event(self) -> dict:
        """The next event line, with per-job seq ordering asserted."""
        if self._file is None:
            raise ServiceError("not connected")
        try:
            line = self._file.readline()
        except OSError as exc:
            raise ServiceError(f"read failed: {exc}") from exc
        if not line:
            raise ServiceError("service closed the connection")
        event = protocol.decode(line)
        job_id = event.get("job")
        if job_id is not None and "seq" in event:
            expected = self._next_seq.get(job_id, 0)
            if event["seq"] != expected:
                raise ServiceError(
                    f"job {job_id}: event {event.get('event')!r} arrived "
                    f"with seq {event['seq']}, expected {expected} -- "
                    "events out of order"
                )
            self._next_seq[job_id] = expected + 1
        return event

    # -- requests ------------------------------------------------------

    def ping(self) -> dict:
        self.send({"op": "ping"})
        return self._read_until({"pong"})

    def stats(self) -> dict:
        """The server's live stats payload (telemetry registry included)."""
        self.send({"op": "stats"})
        return self._read_until({"stats"})

    def cancel(self, job_id: int) -> bool:
        self.send({"op": "cancel", "job": job_id})
        return bool(self._read_until({"cancel_result"}).get("ok"))

    def _read_until(self, events: set) -> dict:
        while True:
            event = self.read_event()
            if event.get("event") in events:
                return event
            if event.get("event") == "protocol_error":
                raise ServiceError(event.get("message", "protocol error"))

    # -- submissions ---------------------------------------------------

    def submit(self, on_event: Callable[[dict], None] | None = None,
               **payload) -> dict:
        """Submit one job and block until its final event."""
        results = self.submit_batch([payload], on_event=on_event,
                                    tenant=payload.get("tenant"))
        return next(iter(results.values()))

    def submit_batch(self, jobs: Iterable[dict], tenant: str | None = None,
                     on_event: Callable[[dict], None] | None = None) -> dict:
        """Submit *jobs* as one batch; streams events until ``batch_done``.

        Returns ``{job_id: final_event}``.  *on_event* sees every event as
        it arrives (the CLI uses it for live progress lines).
        """
        request: dict = {"op": "batch", "jobs": list(jobs)}
        if tenant:
            request["tenant"] = tenant
        self.send(request)
        finals: dict[int, dict] = {}
        while True:
            event = self.read_event()
            if on_event is not None:
                on_event(event)
            kind = event.get("event")
            if kind in FINAL_EVENTS:
                finals[event["job"]] = event
            elif kind == "batch_done":
                return finals
            elif kind == "protocol_error" and "batch" not in event:
                raise ServiceError(event.get("message", "protocol error"))
