"""Bounded per-tenant fair priority queue + the process-pool bridge.

The asyncio front-end produces jobs; CPU-bound flow runs must happen in
worker *processes* (pure-Python compute does not scale on threads).  The
two are joined by:

* :class:`JobQueue` -- thread-safe, bounded (admission control: a full
  queue rejects instead of buffering unboundedly), with one FIFO-per-
  priority heap per tenant and round-robin service across tenants, so one
  tenant submitting 10k jobs cannot starve another submitting 2.  Jobs can
  be cancelled while queued; a cancelled entry is skipped at dispatch.
* :class:`PoolBridge` -- one dispatcher thread that drains fair batches
  from the queue and runs each batch through the existing
  :func:`repro.flow.run_jobs` process pool.  Job *errors* are captured
  inside the worker (one bad source must not poison its batchmates), and
  pool-infrastructure failures reuse ``run_jobs``'s serial fallback, so
  the service keeps serving on hosts that forbid subprocesses.

Queue-depth and wait/latency instruments land on the ``repro.obs``
registry (``service.queue_depth``, ``service.job_wait_seconds``,
``service.batches_total``, ...).
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro import obs
from repro.flow import FlowJob, run_jobs

__all__ = ["JobQueue", "PoolBridge", "QueueFull", "QueuedJob"]


class QueueFull(Exception):
    """The queue is at capacity; the submission was rejected."""


@dataclass
class QueuedJob:
    """One admitted job, from enqueue to resolution."""

    id: int
    tenant: str
    priority: int
    key: str
    job: FlowJob
    enqueued_at: float = field(default_factory=time.monotonic)
    #: "queued" -> "running" -> one of "done"/"error"; or "cancelled"/
    #: "timeout" straight from "queued"
    state: str = "queued"


def _execute_service_job(job: FlowJob) -> tuple:
    """Worker-side wrapper: job failures become data, never exceptions.

    ``run_jobs`` re-raises the first job exception and abandons the rest
    of the batch -- right for sweeps, wrong for a service where batchmates
    belong to unrelated clients.
    """
    from repro.flow import execute_flow_job

    try:
        return ("ok", execute_flow_job(job))
    except Exception as exc:  # noqa: BLE001 -- any job failure is data
        return ("error", f"{type(exc).__name__}: {exc}")


class JobQueue:
    """Thread-safe bounded queue: priority within a tenant, round-robin
    across tenants."""

    def __init__(self, maxsize: int = 1024):
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        #: tenant -> heap of (priority, seq, QueuedJob)
        self._tenants: dict[str, list] = {}
        #: round-robin order over tenants that currently have queued jobs
        self._order: deque[str] = deque()
        self._by_id: dict[int, QueuedJob] = {}
        self._seq = itertools.count()
        self._size = 0
        self._closed = False

    # -- producers (event loop) ----------------------------------------

    def put(self, entry: QueuedJob) -> None:
        """Admit *entry* or raise :class:`QueueFull`/:class:`RuntimeError`."""
        with self._ready:
            if self._closed:
                raise RuntimeError("queue is closed")
            if self._size >= self.maxsize:
                # the server's _finish() owns the rejected counter
                raise QueueFull(
                    f"queue full ({self._size}/{self.maxsize} jobs)"
                )
            heap = self._tenants.get(entry.tenant)
            if heap is None:
                heap = self._tenants[entry.tenant] = []
                self._order.append(entry.tenant)
            heapq.heappush(heap, (entry.priority, next(self._seq), entry))
            self._by_id[entry.id] = entry
            self._size += 1
            obs.gauge("service.queue_depth").set_max(self._size)
            self._ready.notify()

    def cancel(self, job_id: int, state: str = "cancelled") -> bool:
        """Mark a *queued* job cancelled (lazily removed at dispatch);
        ``False`` when the job is unknown, running, or already resolved."""
        with self._lock:
            entry = self._by_id.get(job_id)
            if entry is None or entry.state != "queued":
                return False
            entry.state = state
            return True

    # -- consumer (bridge thread) --------------------------------------

    def get_batch(self, max_jobs: int, timeout: float | None = None
                  ) -> list[QueuedJob] | None:
        """Up to *max_jobs* entries in fair order; ``None`` once the queue
        is closed and drained.  Blocks until at least one live entry (or
        *timeout*, returning ``[]``)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._ready:
            while True:
                batch = self._drain_locked(max_jobs)
                if batch:
                    return batch
                if self._closed:
                    return None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return []
                    self._ready.wait(remaining)
                else:
                    self._ready.wait()

    def _drain_locked(self, max_jobs: int) -> list[QueuedJob]:
        batch: list[QueuedJob] = []
        while self._size and len(batch) < max_jobs:
            tenant = self._order[0]
            heap = self._tenants[tenant]
            _, _, entry = heapq.heappop(heap)
            self._size -= 1
            del self._by_id[entry.id]
            if heap:
                self._order.rotate(-1)  # next tenant gets the next slot
            else:
                del self._tenants[tenant]
                self._order.popleft()
            if entry.state != "queued":
                continue  # cancelled/timed out while waiting: skip
            entry.state = "running"
            obs.histogram("service.job_wait_seconds").observe(
                time.monotonic() - entry.enqueued_at
            )
            batch.append(entry)
        return batch

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        with self._ready:
            self._closed = True
            self._ready.notify_all()

    def depth(self) -> int:
        with self._lock:
            return self._size

    def tenants(self) -> list[str]:
        with self._lock:
            return sorted(self._tenants)


class PoolBridge:
    """The thread-side bridge from the queue onto the ``run_jobs`` pool.

    One dispatcher thread pulls fair batches (up to *batch_limit* jobs,
    default = pool width) and maps them over worker processes; per-job
    outcomes flow back through *on_running* / *on_result* callbacks, which
    are invoked **on the bridge thread** -- the server wraps them with
    ``loop.call_soon_threadsafe``.
    """

    def __init__(
        self,
        queue: JobQueue,
        on_running: Callable[[QueuedJob], None],
        on_result: Callable[[QueuedJob, str, object], None],
        max_workers: int | None = None,
        batch_limit: int | None = None,
    ):
        import os

        self.queue = queue
        self.on_running = on_running
        self.on_result = on_result
        self.max_workers = max_workers
        self.batch_limit = batch_limit or max_workers or os.cpu_count() or 1
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name="repro-service-bridge", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        self.queue.close()
        if self._thread is not None:
            self._thread.join(timeout)

    def _run(self) -> None:
        while True:
            batch = self.queue.get_batch(self.batch_limit)
            if batch is None:
                return
            if not batch:
                continue
            for entry in batch:
                self.on_running(entry)
            obs.counter("service.batches_total").inc()
            obs.histogram("service.batch_jobs").observe(len(batch))
            try:
                outcomes = run_jobs(
                    _execute_service_job,
                    [entry.job for entry in batch],
                    max_workers=self.max_workers,
                )
            except Exception as exc:  # noqa: BLE001 -- keep the bridge alive
                # _execute_service_job never raises, so this is pool
                # plumbing failing in a way run_jobs could not absorb;
                # fail the batch, keep serving
                outcomes = [("error", f"{type(exc).__name__}: {exc}")] * len(batch)
            for entry, (status, value) in zip(batch, outcomes):
                entry.state = "done" if status == "ok" else "error"
                self.on_result(entry, status, value)
