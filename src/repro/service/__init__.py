"""``repro.service`` -- partitioning as a long-lived service.

The library and CLI entry points run one flow per invocation; this package
serves partitioning jobs continuously to many clients and tenants:

* :mod:`repro.service.store` -- sharded, concurrency-safe on-disk store
  (atomic-rename writes, lock-free reads, LRU eviction under
  ``REPRO_CACHE_BUDGET``) that also backs :mod:`repro.flow_cache`.
* :mod:`repro.service.protocol` -- the newline-delimited JSON wire
  protocol: request parsing/validation and event construction.
* :mod:`repro.service.dedupe` -- cache-first admission and coalescing of
  identical in-flight jobs, so one computation serves every duplicate.
* :mod:`repro.service.queue` -- bounded priority queue with per-tenant
  round-robin fairness, plus the dispatcher thread bridging the asyncio
  front-end onto the :func:`repro.flow.run_jobs` process pool.
* :mod:`repro.service.server` -- the asyncio front-end (TCP or unix
  socket) streaming per-job status events.
* :mod:`repro.service.client` -- a blocking client used by
  ``python -m repro submit``, the benchmarks, and the tests.

Only the store is imported eagerly (``repro.flow_cache`` depends on it);
the server stack imports :mod:`repro.flow` and stays lazy so importing
``repro.service`` never drags the whole pipeline in.
"""

from repro.service.store import ShardedStore, get_store, parse_budget

__all__ = ["ShardedStore", "get_store", "parse_budget"]
