"""The asyncio partitioning server: NDJSON front-end over TCP or a unix
socket, streaming per-job status events.

Lifecycle of a submission::

    submit --> accepted --> done (cached=true)             # store hit
    submit --> accepted --> coalesced --> done             # identical job in flight
    submit --> accepted --> queued --> running --> done    # worker execution
                        \\-> rejected (queue full)  \\-> error / cancelled / timeout

Every event for a job carries a monotonically increasing per-job ``seq``,
so clients can assert ordering.  Batches additionally get a ``batch_done``
summary event once every member resolved.

Concurrency model: all protocol state (records, coalescer, batches) is
confined to the event loop thread.  The :class:`~repro.service.queue.PoolBridge`
dispatcher thread reports back via ``loop.call_soon_threadsafe``; each
connection has a single writer task draining an outbound queue, so event
order per connection is the order they were emitted.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro import flow_cache, obs
from repro.flow import FlowReport
from repro.service import protocol
from repro.service.dedupe import Coalescer
from repro.service.queue import JobQueue, PoolBridge, QueueFull, QueuedJob

__all__ = ["PartitionServer", "ServiceConfig", "ServerHandle",
           "run_server", "serve_in_thread"]


@dataclass
class ServiceConfig:
    """Everything ``python -m repro serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = protocol.DEFAULT_PORT
    socket_path: str | None = None   # unix socket; overrides host/port
    queue_size: int = 1024
    max_workers: int | None = None   # run_jobs pool width (None = CPU count)
    batch_limit: int | None = None   # jobs per pool batch (None = pool width)
    use_cache: bool | None = None    # None = defer to REPRO_CACHE


def _result_row(report: FlowReport) -> dict:
    row = report.summary_row()
    row["platform"] = report.platform.name
    if not report.recovered:
        row["failure_reason"] = report.failure_reason
    return row


class _Connection:
    """One client connection: reader loop plus a serializing writer task."""

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.outbound: asyncio.Queue = asyncio.Queue()
        self.alive = True

    def send(self, payload: dict) -> None:
        if self.alive:
            self.outbound.put_nowait(protocol.encode(payload))

    async def drain_forever(self) -> None:
        try:
            while True:
                line = await self.outbound.get()
                if line is None:
                    break
                self.writer.write(line)
                await self.writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self.alive = False


@dataclass
class _JobRecord:
    """Loop-side view of one submission (leader, follower, or cached)."""

    id: int
    spec: protocol.SubmitSpec
    key: str
    conn: _Connection
    batch: Optional["_Batch"] = None
    seq: int = 0
    finished: bool = False
    leader: bool = False
    submitted_at: float = field(default_factory=time.monotonic)

    def emit(self, event: str, **fields) -> None:
        payload = {"event": event, "job": self.id, "seq": self.seq}
        payload.update(fields)
        self.seq += 1
        self.conn.send(payload)


@dataclass
class _Batch:
    id: int
    job_ids: list[int] = field(default_factory=list)
    remaining: int = 0
    ok: int = 0
    cached: int = 0
    failed: int = 0
    done_emitted: bool = False

    def maybe_done(self, conn: "_Connection") -> None:
        if self.remaining == 0 and not self.done_emitted:
            self.done_emitted = True
            conn.send({"event": "batch_done", "batch": self.id,
                       "jobs": self.job_ids, "ok": self.ok,
                       "cached": self.cached, "failed": self.failed})


class PartitionServer:
    """The service: queue + bridge + coalescer behind an asyncio server."""

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self.queue = JobQueue(self.config.queue_size)
        self.coalescer = Coalescer()
        self._records: dict[int, _JobRecord] = {}
        #: leader records by job key, for follower resolution
        self._leaders: dict[str, _JobRecord] = {}
        self._next_job = iter(range(1, 1 << 62)).__next__
        self._next_batch = iter(range(1, 1 << 62)).__next__
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown = asyncio.Event()
        self._started_at = time.monotonic()
        self.bridge = PoolBridge(
            self.queue,
            on_running=self._threadsafe(self._on_running),
            on_result=self._threadsafe(self._on_result),
            max_workers=self.config.max_workers,
            batch_limit=self.config.batch_limit,
        )

    # -- lifecycle -----------------------------------------------------

    def _threadsafe(self, fn):
        def call(*args):
            loop = self._loop
            if loop is not None and not loop.is_closed():
                loop.call_soon_threadsafe(fn, *args)
        return call

    @property
    def use_cache(self) -> bool:
        if self.config.use_cache is not None:
            return self.config.use_cache
        return flow_cache.cache_enabled()

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.bridge.start()
        if self.config.socket_path:
            self._server = await asyncio.start_unix_server(
                self._handle, path=self.config.socket_path,
                limit=protocol.MAX_LINE_BYTES,
            )
        else:
            self._server = await asyncio.start_server(
                self._handle, host=self.config.host, port=self.config.port,
                limit=protocol.MAX_LINE_BYTES,
            )
            # port 0 means "pick one"; expose what the kernel chose
            self.config.port = self._server.sockets[0].getsockname()[1]

    def where(self) -> str:
        if self.config.socket_path:
            return f"unix:{self.config.socket_path}"
        return f"{self.config.host}:{self.config.port}"

    async def wait_shutdown(self) -> None:
        await self._shutdown.wait()

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await asyncio.get_running_loop().run_in_executor(None, self.bridge.stop)

    # -- connection handling -------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        conn = _Connection(writer)
        writer_task = asyncio.ensure_future(conn.drain_forever())
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, ValueError):
                    break  # ValueError: line over the reader limit
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    request = protocol.decode(line)
                    self._dispatch(conn, request)
                except protocol.ProtocolError as exc:
                    conn.send({"event": "protocol_error", "message": str(exc)})
        finally:
            conn.alive = False
            conn.outbound.put_nowait(None)
            await writer_task
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    # -- request dispatch (event loop only) ----------------------------

    def _dispatch(self, conn: _Connection, request: dict) -> None:
        op = request.get("op")
        if op == "submit":
            self._submit(conn, request, batch=None)
        elif op == "batch":
            self._submit_batch(conn, request)
        elif op == "cancel":
            self._cancel(conn, request)
        elif op == "stats":
            self._stats(conn)
        elif op == "ping":
            conn.send({"event": "pong", "uptime_s":
                       round(time.monotonic() - self._started_at, 3)})
        else:
            raise protocol.ProtocolError(f"unknown op {op!r}")

    def _submit_batch(self, conn: _Connection, request: dict) -> None:
        jobs = request.get("jobs")
        if not isinstance(jobs, list) or not jobs:
            raise protocol.ProtocolError("'jobs' must be a non-empty list")
        tenant = request.get("tenant", "anonymous")
        batch = _Batch(id=self._next_batch(), remaining=len(jobs))
        conn.send({"event": "batch_accepted", "batch": batch.id,
                   "jobs": len(jobs)})
        for payload in jobs:
            # a bad entry must not orphan its batchmates' batch_done event
            try:
                if not isinstance(payload, dict):
                    raise protocol.ProtocolError("batch entries must be objects")
                payload.setdefault("tenant", tenant)
                self._submit(conn, payload, batch=batch)
            except protocol.ProtocolError as exc:
                batch.remaining -= 1
                batch.failed += 1
                conn.send({"event": "protocol_error", "batch": batch.id,
                           "message": str(exc)})
        batch.maybe_done(conn)

    def _submit(self, conn: _Connection, payload: dict,
                batch: _Batch | None) -> None:
        spec = protocol.parse_submit(payload)
        key = flow_cache.job_key(spec.job)
        record = _JobRecord(id=self._next_job(), spec=spec, key=key,
                            conn=conn, batch=batch)
        self._records[record.id] = record
        if batch is not None:
            batch.job_ids.append(record.id)
        obs.counter("service.submitted_total").inc()
        self._tenant_counter(spec.tenant, "submitted_total").inc()
        record.emit("accepted", name=spec.job.name, tenant=spec.tenant,
                    key=key, batch=batch.id if batch else None)

        if self.use_cache and spec.use_cache:
            report = self.coalescer.check_cache(spec.job)
            if report is not None:
                self._tenant_counter(spec.tenant, "cache_served_total").inc()
                self._finish(record, "done", cached=True,
                             result=_result_row(report))
                return

        if not self.coalescer.admit(key):
            self.coalescer.attach(key, lambda *args: self._follower_done(record, *args))
            self._tenant_counter(spec.tenant, "coalesced_total").inc()
            leader = self._leaders.get(key)
            record.emit("coalesced",
                        leader=leader.id if leader is not None else None)
            self._arm_timeout(record)
            return

        entry = QueuedJob(id=record.id, tenant=spec.tenant,
                          priority=spec.priority, key=key, job=spec.job)
        try:
            self.queue.put(entry)
        except (QueueFull, RuntimeError) as exc:
            self.coalescer.abandon(key)
            self._finish(record, "rejected", reason=str(exc))
            return
        record.leader = True
        self._leaders[key] = record
        record.emit("queued", depth=self.queue.depth())
        self._arm_timeout(record)

    def _cancel(self, conn: _Connection, request: dict) -> None:
        job_id = request.get("job")
        record = self._records.get(job_id) if isinstance(job_id, int) else None
        if record is None or record.finished:
            conn.send({"event": "cancel_result", "job": job_id, "ok": False})
            return
        ok = self._abort(record, "cancelled")
        conn.send({"event": "cancel_result", "job": job_id, "ok": ok})

    def _stats(self, conn: _Connection) -> None:
        conn.send({
            "event": "stats",
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "queue_depth": self.queue.depth(),
            "inflight": self.coalescer.in_flight(),
            "metrics": obs.snapshot(),
        })

    # -- timeouts and cancellation -------------------------------------

    def _arm_timeout(self, record: _JobRecord) -> None:
        if record.spec.timeout is not None and self._loop is not None:
            self._loop.call_later(record.spec.timeout, self._expire, record)

    def _expire(self, record: _JobRecord) -> None:
        if not record.finished:
            self._abort(record, "timeout")

    def _abort(self, record: _JobRecord, state: str) -> bool:
        """Cancel/timeout *record*; leaders take their followers with them
        (the computation they were all waiting on is not going to run)."""
        if record.leader:
            if not self.queue.cancel(record.id, state):
                return False  # already running; results will arrive
            del self._leaders[record.key]
            self._finish(record, state)
            self.coalescer.resolve(record.key, state, None)
            return True
        # followers (and cache-raced records) just stop listening
        self._finish(record, state)
        return True

    # -- results (bridge thread -> loop via call_soon_threadsafe) ------

    def _on_running(self, entry: QueuedJob) -> None:
        record = self._records.get(entry.id)
        if record is not None and not record.finished:
            record.emit("running")

    def _on_result(self, entry: QueuedJob, status: str, value) -> None:
        record = self._records.get(entry.id)
        if record is None:
            return
        self._leaders.pop(record.key, None)
        if status == "ok":
            report: FlowReport = value
            if self.use_cache and record.spec.use_cache:
                flow_cache.store_report(record.spec.job, report)
            row = _result_row(report)
            if not record.finished:
                self._finish(record, "done", cached=False, result=row)
            self.coalescer.resolve(record.key, "done", row)
        else:
            if not record.finished:
                self._finish(record, "error", message=str(value))
            self.coalescer.resolve(record.key, "error", str(value))

    def _follower_done(self, record: _JobRecord, state: str, payload) -> None:
        if record.finished:
            return  # timed out / cancelled while coalesced
        if state == "done":
            self._finish(record, "done", cached=False, coalesced=True,
                         result=payload)
        elif state == "error":
            self._finish(record, "error", coalesced=True, message=payload)
        else:
            self._finish(record, state, coalesced=True)

    # -- bookkeeping ---------------------------------------------------

    @staticmethod
    def _tenant_counter(tenant: str, name: str):
        return obs.counter(f"service.tenant.{tenant}.{name}")

    def _finish(self, record: _JobRecord, event: str, **fields) -> None:
        if record.finished:
            return
        record.finished = True
        elapsed = time.monotonic() - record.submitted_at
        tenant = record.spec.tenant
        if event == "done":
            obs.counter("service.completed_total").inc()
            self._tenant_counter(tenant, "completed_total").inc()
            obs.histogram("service.job_seconds").observe(elapsed)
        elif event == "error":
            obs.counter("service.failed_total").inc()
            self._tenant_counter(tenant, "failed_total").inc()
        else:
            obs.counter(f"service.{event}_total").inc()
        record.emit(event, elapsed_ms=round(elapsed * 1e3, 3), **fields)
        self._records.pop(record.id, None)
        batch = record.batch
        if batch is not None:
            batch.remaining -= 1
            if event == "done":
                batch.ok += 1
                if fields.get("cached"):
                    batch.cached += 1
            else:
                batch.failed += 1
            batch.maybe_done(record.conn)


async def run_server(config: ServiceConfig | None = None,
                     ready: threading.Event | None = None,
                     holder: dict | None = None) -> PartitionServer:
    """Start a server and run until :meth:`PartitionServer.request_shutdown`.

    *ready*/*holder* let a launching thread learn the bound address and
    keep handles for a clean cross-thread shutdown (see
    :func:`serve_in_thread`).
    """
    server = PartitionServer(config)
    await server.start()
    if holder is not None:
        holder["server"] = server
        holder["loop"] = asyncio.get_running_loop()
    if ready is not None:
        ready.set()
    try:
        await server.wait_shutdown()
    finally:
        await server.stop()
    return server


class ServerHandle:
    """A server running in a daemon thread (tests, benchmarks)."""

    def __init__(self, thread: threading.Thread, holder: dict):
        self._thread = thread
        self._holder = holder

    @property
    def server(self) -> PartitionServer:
        return self._holder["server"]

    @property
    def config(self) -> ServiceConfig:
        return self.server.config

    def stop(self, timeout: float = 10.0) -> None:
        loop = self._holder.get("loop")
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self.server.request_shutdown)
        self._thread.join(timeout)


def serve_in_thread(config: ServiceConfig | None = None,
                    ready_timeout: float = 30.0) -> ServerHandle:
    """Run a :class:`PartitionServer` on a fresh event loop in a daemon
    thread; returns once the socket is bound."""
    ready = threading.Event()
    holder: dict = {}

    def runner() -> None:
        asyncio.run(run_server(config, ready=ready, holder=holder))

    thread = threading.Thread(target=runner, name="repro-service", daemon=True)
    thread.start()
    if not ready.wait(ready_timeout):
        raise RuntimeError("service did not come up in time")
    return ServerHandle(thread, holder)
