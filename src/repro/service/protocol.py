"""The service wire protocol: newline-delimited JSON, both directions.

Requests are single JSON objects with an ``op`` field::

    {"op": "submit", "bench": "brev", "platform": "mips200",
     "opt_level": 1, "tenant": "alice", "priority": 0, "timeout": 30}
    {"op": "submit", "source": "int main(void){...}", "name": "custom"}
    {"op": "batch", "tenant": "alice", "jobs": [{...}, {...}]}
    {"op": "cancel", "job": 7}
    {"op": "stats"}
    {"op": "ping"}

Responses and job events are single JSON objects with an ``event`` field
and, for job events, a per-job ``seq`` counter starting at 0 -- clients
assert events arrive in submission order per job (``accepted`` ->
``queued``/``coalesced`` -> ``running`` -> ``done``/``error``/...).

Protocol-level failures never kill the connection: a malformed request is
answered with ``{"event": "protocol_error", ...}`` and the line is dropped.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass

from repro.flow import FlowJob
from repro.platform.platform import NAMED_PLATFORMS

__all__ = [
    "DEFAULT_PORT",
    "MAX_LINE_BYTES",
    "ProtocolError",
    "SubmitSpec",
    "encode",
    "decode",
    "parse_submit",
]

#: default TCP port for ``python -m repro serve`` ("SV" on a phone keypad
#: would be nicer; 8752 is simply unclaimed)
DEFAULT_PORT = 8752

#: one request line must fit the asyncio reader's buffer; sources are
#: small C files, so 4 MiB is generous without letting a client OOM the
#: server with one line
MAX_LINE_BYTES = 4 * 1024 * 1024


class ProtocolError(ValueError):
    """A request the server understands well enough to reject politely."""


#: tenants become metric names (``service.tenant.<t>.*``); keep them sane
_TENANT_RE = re.compile(r"[A-Za-z0-9_-]{1,64}")


def encode(payload: dict) -> bytes:
    """One wire line for *payload* (compact separators, trailing newline)."""
    return json.dumps(payload, separators=(",", ":")).encode() + b"\n"


def decode(line: bytes) -> dict:
    """Parse one wire line into a request/event object."""
    try:
        payload = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"malformed JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")
    return payload


@dataclass(frozen=True)
class SubmitSpec:
    """One validated job submission, ready to enqueue."""

    job: FlowJob
    tenant: str
    priority: int
    timeout: float | None
    use_cache: bool


def _benchmark_source(name: str) -> str:
    from repro.programs import get_benchmark

    try:
        return get_benchmark(name).source
    except KeyError as exc:
        raise ProtocolError(f"unknown benchmark {name!r}") from exc


def parse_submit(payload: dict, default_tenant: str = "anonymous") -> SubmitSpec:
    """Validate one submit payload (or one entry of a batch) into a
    :class:`SubmitSpec`; raises :class:`ProtocolError` on anything off."""
    if "source" in payload:
        source = payload["source"]
        if not isinstance(source, str) or not source.strip():
            raise ProtocolError("'source' must be a non-empty string")
        name = payload.get("name", "job")
    elif "bench" in payload:
        name = payload["bench"]
        if not isinstance(name, str):
            raise ProtocolError("'bench' must be a benchmark name")
        source = _benchmark_source(name)
        name = payload.get("name", name)
    else:
        raise ProtocolError("submission needs 'source' or 'bench'")
    if not isinstance(name, str) or not name:
        raise ProtocolError("'name' must be a non-empty string")

    platform_name = payload.get("platform", "mips200")
    platform = NAMED_PLATFORMS.get(platform_name)
    if platform is None:
        raise ProtocolError(
            f"unknown platform {platform_name!r} "
            f"(choose from {', '.join(sorted(NAMED_PLATFORMS))})"
        )

    opt_level = payload.get("opt_level", 1)
    if opt_level not in (0, 1, 2, 3):
        raise ProtocolError("'opt_level' must be 0..3")

    max_steps = payload.get("max_steps", 200_000_000)
    if not isinstance(max_steps, int) or max_steps <= 0:
        raise ProtocolError("'max_steps' must be a positive integer")

    tenant = payload.get("tenant", default_tenant)
    if not isinstance(tenant, str) or not _TENANT_RE.fullmatch(tenant):
        raise ProtocolError(
            "'tenant' must match [A-Za-z0-9_-]{1,64} (it names per-tenant "
            "metrics on the telemetry registry)"
        )

    priority = payload.get("priority", 0)
    if not isinstance(priority, int):
        raise ProtocolError("'priority' must be an integer (lower runs first)")

    timeout = payload.get("timeout")
    if timeout is not None:
        if not isinstance(timeout, (int, float)) or timeout <= 0:
            raise ProtocolError("'timeout' must be a positive number of seconds")
        timeout = float(timeout)

    job = FlowJob(source=source, name=name, opt_level=opt_level,
                  platform=platform, max_steps=max_steps)
    return SubmitSpec(job=job, tenant=tenant, priority=priority,
                      timeout=timeout, use_cache=not payload.get("no_cache", False))
