"""Admission-time dedup: cache first, then coalesce identical in-flight jobs.

Warp-style on-the-fly partitioning only pays off when a configuration that
was computed once is *reused*; for a multi-tenant service that means two
layers in front of the workers:

1. **Cache consult** -- a submission whose :func:`repro.flow_cache.job_key`
   is already in the sharded store is answered immediately, no queue, no
   worker (``service.cache_served_total``).
2. **In-flight coalescing** -- a submission identical to one already
   queued or running attaches to it instead of enqueuing a duplicate; when
   the leader finishes, every follower is resolved from the same result
   (``service.coalesced_total``).  A thousand users submitting the same
   kernel costs one worker execution.

The coalescer is loop-confined: the asyncio server calls it only from the
event loop thread (results arrive via ``call_soon_threadsafe``), so no
locking is needed here.
"""

from __future__ import annotations

from typing import Callable

from repro import flow_cache, obs
from repro.flow import FlowJob, FlowReport

__all__ = ["Coalescer"]


class Coalescer:
    """Tracks in-flight job keys and the callbacks awaiting each one."""

    def __init__(self):
        #: job key -> callbacks to fire when the leader resolves
        self._inflight: dict[str, list[Callable]] = {}

    # -- cache layer ---------------------------------------------------

    @staticmethod
    def check_cache(job: FlowJob) -> FlowReport | None:
        """The stored report for *job*, if the shared store has one."""
        report = flow_cache.load_report(job)
        if report is not None:
            obs.counter("service.cache_served_total").inc()
        return report

    # -- in-flight layer -----------------------------------------------

    def admit(self, key: str) -> bool:
        """``True`` when the caller is the leader for *key* (first in);
        ``False`` when an identical job is already in flight."""
        if key in self._inflight:
            return False
        self._inflight[key] = []
        return True

    def attach(self, key: str, callback: Callable) -> None:
        """Subscribe a follower to the in-flight job *key*."""
        self._inflight[key].append(callback)
        obs.counter("service.coalesced_total").inc()

    def resolve(self, key: str, *args) -> int:
        """Leader finished (or failed, or was cancelled): fire every
        follower callback with *args*; returns the follower count."""
        followers = self._inflight.pop(key, [])
        for callback in followers:
            callback(*args)
        return len(followers)

    def abandon(self, key: str) -> None:
        """Leader never made it into the queue (rejected): forget the key.

        Only valid while the key has no followers -- the server resolves
        keys with followers through :meth:`resolve` so nobody waits on a
        job that will never run.
        """
        followers = self._inflight.pop(key, [])
        assert not followers, "abandoning a key with live followers"

    def in_flight(self) -> int:
        return len(self._inflight)

    def is_inflight(self, key: str) -> bool:
        return key in self._inflight
