"""Sharded, concurrency-safe on-disk byte store -- the service-grade
successor of the flat ``~/.cache/repro/flow`` directory.

Many worker processes and many tenants hammer one cache at once, so the
store is designed around three properties:

* **lock-free reads** -- entries are published with ``mkstemp`` +
  ``os.replace``, so a reader either sees a complete entry or no entry;
  there is no torn-read window and no reader-side locking.  POSIX keeps a
  file readable through a concurrent unlink, so LRU eviction can never
  yank an entry out from under a reader mid-read.
* **sharding by key prefix** -- entries live under 256 two-hex-char
  subdirectories (``<root>/ab/<key>.pkl``), so directory operations stay
  O(entries/256) and concurrent writers rarely contend on one directory.
* **LRU eviction under a size budget** -- ``REPRO_CACHE_BUDGET`` (bytes,
  or ``512K``/``64M``/``2G``) bounds the bytes on disk.  Recency is the
  entry's mtime, bumped on every hit, so it is shared across processes.
  When a writer's running total crosses the budget it rescans the shards
  (recomputing the *true* total -- entries stored by other processes
  included) and unlinks oldest-first until back under budget.

Telemetry rides on the existing ``repro.obs`` registry: ``cache.hits_total``,
``cache.misses_total``, ``cache.stores_total``, ``cache.evictions_total``,
``cache.evicted_bytes_total``, ``cache.stale_tmp_reaped_total`` counters and
the ``cache.bytes_on_disk`` gauge, which the eviction scan recomputes from
the real shard contents (it is no longer blind to other processes' writes).
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path
from typing import Callable, Iterator, NamedTuple

from repro import obs

__all__ = [
    "BUDGET_ENV",
    "STALE_TMP_SECONDS",
    "ShardedStore",
    "StoreEntry",
    "get_store",
    "parse_budget",
    "sweep_stale_tmp",
]

#: size budget for the shared store, e.g. ``REPRO_CACHE_BUDGET=64M``
BUDGET_ENV = "REPRO_CACHE_BUDGET"

#: a ``*.tmp`` scratch file older than this is an orphan from a crashed
#: writer (a live writer publishes or unlinks within seconds)
STALE_TMP_SECONDS = 3600.0

_SIZE_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30, "t": 1 << 40}


def parse_budget(text: str | None) -> int | None:
    """``"64M"``/``"512k"``/``"1000000"`` -> bytes; ``None`` = unlimited.

    Empty, unparsable, zero or negative budgets all mean "no budget" --
    a malformed environment variable must never break a cache write.
    """
    if not text:
        return None
    text = text.strip().lower()
    scale = 1
    if text and text[-1] in _SIZE_SUFFIXES:
        scale = _SIZE_SUFFIXES[text[-1]]
        text = text[:-1]
    try:
        budget = int(float(text) * scale)
    except ValueError:
        return None
    return budget if budget > 0 else None


def sweep_stale_tmp(directory: Path, max_age: float = STALE_TMP_SECONDS) -> int:
    """Remove ``*.tmp`` orphans left by crashed writers; returns the count.

    Writers publish via ``mkstemp`` + ``os.replace`` and unlink their
    scratch file on any error, but a writer killed between the two (OOM,
    SIGKILL, power loss) leaks the ``.tmp`` forever.  Only files older
    than *max_age* are touched so a concurrent writer's in-flight scratch
    file is never yanked away.

    Wall-clock time is not monotonic: a clock step between a writer's
    ``mkstemp`` and this scan can make a fresh scratch file look ancient
    (or land its mtime in the future).  Ages are therefore clamped to
    >= 0 and future-dated files are never reaped -- a file that claims
    to be from the future is evidence of a clock step, not a crash.
    """
    removed = 0
    now = time.time()
    try:
        for entry in directory.glob("*.tmp"):
            try:
                age = now - entry.stat().st_mtime
                if age < 0:
                    continue  # mtime in the future: clock stepped, skip
                if age >= max_age:
                    entry.unlink()
                    removed += 1
            except OSError:
                pass
    except OSError:
        pass
    return removed


class StoreEntry(NamedTuple):
    """One published entry, as seen by a shard scan."""

    path: Path
    size: int
    mtime: float


#: shard directories this process has already reaped stale ``*.tmp`` files
#: from -- high-throughput service writes must not pay a directory scan on
#: every store, so the reap runs once per process per shard
_SWEPT_SHARDS: set[str] = set()

#: process-wide store instances, keyed by (root, budget) -- the running
#: byte total survives across call sites so budget checks stay incremental
_STORES: dict[tuple[str, int | None], "ShardedStore"] = {}


def get_store(root: Path | str, budget_bytes: int | None = None,
              suffix: str = ".pkl") -> "ShardedStore":
    """The process-wide store for *root* (created on first use)."""
    key = (str(Path(root)), budget_bytes)
    store = _STORES.get(key)
    if store is None:
        store = _STORES[key] = ShardedStore(root, budget_bytes, suffix=suffix)
    return store


class ShardedStore:
    """Content-addressed bytes keyed by hex digests, sharded ``key[:2]``.

    The store never raises out of its public methods: reads degrade to
    misses and writes to no-ops, so a broken disk can slow callers down
    but not take them out.  Keys must be lowercase hex strings of length
    >= 2 (SHA-256 digests in practice).
    """

    #: after an over-budget eviction, keep evicting down to this fraction
    #: of the budget so the very next write does not trigger another full
    #: shard scan (classic high/low-water hysteresis)
    LOW_WATER = 0.9

    def __init__(self, root: Path | str, budget_bytes: int | None = None,
                 suffix: str = ".pkl"):
        self.root = Path(root)
        self.budget_bytes = budget_bytes
        self.suffix = suffix
        #: running total of published bytes; ``None`` until the first
        #: authoritative shard scan
        self._bytes: int | None = None

    # -- paths ---------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}{self.suffix}"

    # -- reads ---------------------------------------------------------

    def load(self, key: str, decode: Callable[[bytes], object] | None = None):
        """The decoded entry for *key*, or ``None`` on any kind of miss.

        Lock-free: one ``open`` + full read of an atomically published
        file.  *decode* (e.g. ``pickle.loads`` plus sanity checks) runs
        under the store's miss accounting -- an entry that fails to decode
        is counted as a miss and discarded, so one corrupt pickle costs
        one recompute instead of poisoning every future read.  Hits bump
        the entry's mtime, which is the LRU recency other processes see.
        """
        path = self.path_for(key)
        try:
            data = path.read_bytes()
        except OSError:
            obs.counter("cache.misses_total").inc()
            return None
        value: object = data
        if decode is not None:
            try:
                value = decode(data)
            except Exception:
                obs.counter("cache.misses_total").inc()
                self.discard(key)
                return None
        obs.counter("cache.hits_total").inc()
        try:
            os.utime(path, None)  # LRU recency, shared via the filesystem
        except OSError:
            pass
        return value

    def discard(self, key: str) -> None:
        """Drop *key* if present (corrupt entries, explicit invalidation)."""
        path = self.path_for(key)
        try:
            size = path.stat().st_size
            path.unlink()
        except OSError:
            return
        if self._bytes is not None:
            self._bytes = max(0, self._bytes - size)
            self._publish_bytes()

    # -- writes --------------------------------------------------------

    def store(self, key: str, data: bytes) -> bool:
        """Atomically publish *data* under *key*; ``False`` on failure.

        Other processes only ever observe complete entries (``mkstemp`` in
        the shard directory + ``os.replace``).  Each successful store
        updates the running byte total and, when a budget is configured
        and exceeded, triggers the LRU eviction scan.
        """
        path = self.path_for(key)
        shard = path.parent
        try:
            shard.mkdir(parents=True, exist_ok=True)
            try:
                replaced = path.stat().st_size
            except OSError:
                replaced = 0
            fd, tmp_name = tempfile.mkstemp(dir=shard, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(data)
                os.replace(tmp_name, path)
            except Exception:
                # Exception only: a Ctrl-C here must propagate untouched,
                # and the orphaned scratch file is exactly what the stale
                # ``*.tmp`` reap exists to clean up.
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        obs.counter("cache.stores_total").inc()
        self._reap_shard(shard)
        self._account(len(data) - replaced)
        return True

    def _reap_shard(self, shard: Path) -> None:
        """Stale-``*.tmp`` reap, once per process per shard directory."""
        token = str(shard)
        if token in _SWEPT_SHARDS:
            return
        _SWEPT_SHARDS.add(token)
        reaped = sweep_stale_tmp(shard)
        if reaped:
            obs.counter("cache.stale_tmp_reaped_total").inc(reaped)

    # -- size accounting and LRU eviction ------------------------------

    def _account(self, delta: int) -> None:
        if self.budget_bytes is None and not obs.metrics_enabled():
            return  # nothing needs the total; skip the scan entirely
        if self._bytes is None:
            self._rescan()  # authoritative: picks up other processes' entries
        else:
            self._bytes = max(0, self._bytes + delta)
        self._publish_bytes()
        if self.budget_bytes is not None and self._bytes > self.budget_bytes:
            self.evict_to_budget()

    def _publish_bytes(self) -> None:
        if self._bytes is not None:
            obs.gauge("cache.bytes_on_disk").set(self._bytes)

    def entries(self) -> Iterator[StoreEntry]:
        """Every published entry across every shard (stat'ed live)."""
        try:
            shards = [d for d in self.root.iterdir() if d.is_dir()]
        except OSError:
            return
        for shard in shards:
            try:
                candidates = list(shard.glob(f"*{self.suffix}"))
            except OSError:
                continue
            for path in candidates:
                try:
                    stat = path.stat()
                except OSError:
                    continue  # evicted or replaced between glob and stat
                yield StoreEntry(path, stat.st_size, stat.st_mtime)

    def _rescan(self) -> list[StoreEntry]:
        """Walk the shards, refresh the byte total from what is really on
        disk (entries from *any* process), and return the entries."""
        scanned = list(self.entries())
        self._bytes = sum(entry.size for entry in scanned)
        self._publish_bytes()
        return scanned

    def bytes_on_disk(self, refresh: bool = False) -> int:
        """The store's published byte total (authoritative on *refresh*)."""
        if refresh or self._bytes is None:
            self._rescan()
        return self._bytes or 0

    def evict_to_budget(self) -> int:
        """LRU-evict down to the low-water mark; returns entries removed.

        Always starts from a full rescan, so the decision is made against
        the *real* shard contents -- the running total only schedules the
        scan, it never decides what to delete.  A concurrently deleted
        entry is somebody else's eviction: skipped, not an error.
        """
        if self.budget_bytes is None:
            return 0
        scanned = self._rescan()
        target = int(self.budget_bytes * self.LOW_WATER)
        if (self._bytes or 0) <= self.budget_bytes:
            return 0
        evicted = 0
        for entry in sorted(scanned, key=lambda e: (e.mtime, e.path.name)):
            if (self._bytes or 0) <= target:
                break
            try:
                entry.path.unlink()
            except OSError:
                continue
            self._bytes = max(0, (self._bytes or 0) - entry.size)
            evicted += 1
            obs.counter("cache.evictions_total").inc()
            obs.counter("cache.evicted_bytes_total").inc(entry.size)
        self._publish_bytes()
        return evicted

    # -- maintenance ---------------------------------------------------

    def clear(self) -> int:
        """Delete every entry and every ``*.tmp`` scratch file (whatever
        its age -- clearing is explicit); returns the number removed."""
        removed = 0
        try:
            shards = [d for d in self.root.iterdir() if d.is_dir()]
        except OSError:
            shards = []
        for shard in shards:
            for pattern in (f"*{self.suffix}", "*.tmp"):
                try:
                    victims = list(shard.glob(pattern))
                except OSError:
                    continue
                for path in victims:
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        pass
            try:
                shard.rmdir()  # best-effort: leaves non-empty shards alone
            except OSError:
                pass
        self._bytes = 0
        self._publish_bytes()
        return removed
