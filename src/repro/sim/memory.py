"""Sparse byte-addressable memory with MIPS alignment rules.

The scalar accessors are on the simulator's hottest path (every load/store
executor calls straight into them), so they are written for CPython speed:
the page dictionary lookup is inlined (no ``_page`` helper call per access)
and the last-touched page is cached in two slots, which turns the common
streaming access patterns (stack frames, array walks) into a single integer
compare instead of a dict probe.  Bulk operations copy whole page slices and
are used by the loader to install text/data sections in one pass.
"""

from __future__ import annotations

from repro.errors import MemoryFault

_PAGE_BITS = 12
_PAGE_SIZE = 1 << _PAGE_BITS
_PAGE_MASK = _PAGE_SIZE - 1
_ADDR_MASK = 0xFFFF_FFFF


class Memory:
    """Sparse 32-bit address space backed by 4 KiB pages.

    All accesses must be naturally aligned (MIPS-I has no unaligned loads in
    this subset); violations raise :class:`MemoryFault`, which in practice
    indicates a compiler bug and is tested for.
    """

    __slots__ = ("_pages", "_cached_index", "_cached_page")

    def __init__(self) -> None:
        self._pages: dict[int, bytearray] = {}
        self._cached_index = -1
        self._cached_page: bytearray | None = None

    def _page(self, address: int) -> bytearray:
        """Page containing *address*, created on demand and cached."""
        index = address >> _PAGE_BITS
        page = self._pages.get(index)
        if page is None:
            page = bytearray(_PAGE_SIZE)
            self._pages[index] = page
        self._cached_index = index
        self._cached_page = page
        return page

    # -- byte -------------------------------------------------------------

    def read_u8(self, address: int) -> int:
        address &= _ADDR_MASK
        if address >> _PAGE_BITS == self._cached_index:
            page = self._cached_page
        else:
            page = self._page(address)
        return page[address & _PAGE_MASK]

    def write_u8(self, address: int, value: int) -> None:
        address &= _ADDR_MASK
        if address >> _PAGE_BITS == self._cached_index:
            page = self._cached_page
        else:
            page = self._page(address)
        page[address & _PAGE_MASK] = value & 0xFF

    # -- half -------------------------------------------------------------

    def read_u16(self, address: int) -> int:
        address &= _ADDR_MASK
        if address & 1:
            raise MemoryFault(address, "misaligned halfword read")
        if address >> _PAGE_BITS == self._cached_index:
            page = self._cached_page
        else:
            page = self._page(address)
        offset = address & _PAGE_MASK
        return page[offset] | (page[offset + 1] << 8)

    def write_u16(self, address: int, value: int) -> None:
        address &= _ADDR_MASK
        if address & 1:
            raise MemoryFault(address, "misaligned halfword write")
        if address >> _PAGE_BITS == self._cached_index:
            page = self._cached_page
        else:
            page = self._page(address)
        offset = address & _PAGE_MASK
        page[offset] = value & 0xFF
        page[offset + 1] = (value >> 8) & 0xFF

    # -- word -------------------------------------------------------------

    def read_u32(self, address: int) -> int:
        address &= _ADDR_MASK
        if address & 3:
            raise MemoryFault(address, "misaligned word read")
        if address >> _PAGE_BITS == self._cached_index:
            page = self._cached_page
        else:
            page = self._page(address)
        offset = address & _PAGE_MASK
        return (
            page[offset]
            | (page[offset + 1] << 8)
            | (page[offset + 2] << 16)
            | (page[offset + 3] << 24)
        )

    def write_u32(self, address: int, value: int) -> None:
        address &= _ADDR_MASK
        if address & 3:
            raise MemoryFault(address, "misaligned word write")
        if address >> _PAGE_BITS == self._cached_index:
            page = self._cached_page
        else:
            page = self._page(address)
        offset = address & _PAGE_MASK
        page[offset] = value & 0xFF
        page[offset + 1] = (value >> 8) & 0xFF
        page[offset + 2] = (value >> 16) & 0xFF
        page[offset + 3] = (value >> 24) & 0xFF

    # -- bulk -------------------------------------------------------------
    #
    # Bulk transfers work a page slice at a time: at most two slice copies
    # for anything under 4 KiB instead of one method call per byte.

    def write_bytes(self, address: int, data: bytes) -> None:
        position = 0
        length = len(data)
        while position < length:
            start = (address + position) & _ADDR_MASK
            offset = start & _PAGE_MASK
            chunk = min(length - position, _PAGE_SIZE - offset)
            self._page(start)[offset : offset + chunk] = data[position : position + chunk]
            position += chunk

    def read_bytes(self, address: int, length: int) -> bytes:
        out = bytearray()
        position = 0
        while position < length:
            start = (address + position) & _ADDR_MASK
            offset = start & _PAGE_MASK
            chunk = min(length - position, _PAGE_SIZE - offset)
            out += self._page(start)[offset : offset + chunk]
            position += chunk
        return bytes(out)

    def read_words(self, address: int, count: int) -> list[int]:
        address &= _ADDR_MASK
        if address & 3:
            raise MemoryFault(address, "misaligned word read")
        raw = self.read_bytes(address, 4 * count)
        return [
            int.from_bytes(raw[position : position + 4], "little")
            for position in range(0, 4 * count, 4)
        ]

    def write_words(self, address: int, words: list[int]) -> None:
        address &= _ADDR_MASK
        if address & 3:
            raise MemoryFault(address, "misaligned word write")
        self.write_bytes(
            address,
            b"".join((word & _ADDR_MASK).to_bytes(4, "little") for word in words),
        )
