"""Sparse byte-addressable memory with MIPS alignment rules."""

from __future__ import annotations

from repro.errors import MemoryFault

_PAGE_BITS = 12
_PAGE_SIZE = 1 << _PAGE_BITS
_PAGE_MASK = _PAGE_SIZE - 1


class Memory:
    """Sparse 32-bit address space backed by 4 KiB pages.

    All accesses must be naturally aligned (MIPS-I has no unaligned loads in
    this subset); violations raise :class:`MemoryFault`, which in practice
    indicates a compiler bug and is tested for.
    """

    def __init__(self) -> None:
        self._pages: dict[int, bytearray] = {}

    def _page(self, address: int) -> bytearray:
        page = self._pages.get(address >> _PAGE_BITS)
        if page is None:
            page = bytearray(_PAGE_SIZE)
            self._pages[address >> _PAGE_BITS] = page
        return page

    # -- byte -------------------------------------------------------------

    def read_u8(self, address: int) -> int:
        address &= 0xFFFF_FFFF
        return self._page(address)[address & _PAGE_MASK]

    def write_u8(self, address: int, value: int) -> None:
        address &= 0xFFFF_FFFF
        self._page(address)[address & _PAGE_MASK] = value & 0xFF

    # -- half -------------------------------------------------------------

    def read_u16(self, address: int) -> int:
        address &= 0xFFFF_FFFF
        if address & 1:
            raise MemoryFault(address, "misaligned halfword read")
        page = self._page(address)
        offset = address & _PAGE_MASK
        return page[offset] | (page[offset + 1] << 8)

    def write_u16(self, address: int, value: int) -> None:
        address &= 0xFFFF_FFFF
        if address & 1:
            raise MemoryFault(address, "misaligned halfword write")
        page = self._page(address)
        offset = address & _PAGE_MASK
        page[offset] = value & 0xFF
        page[offset + 1] = (value >> 8) & 0xFF

    # -- word -------------------------------------------------------------

    def read_u32(self, address: int) -> int:
        address &= 0xFFFF_FFFF
        if address & 3:
            raise MemoryFault(address, "misaligned word read")
        page = self._page(address)
        offset = address & _PAGE_MASK
        return int.from_bytes(page[offset : offset + 4], "little")

    def write_u32(self, address: int, value: int) -> None:
        address &= 0xFFFF_FFFF
        if address & 3:
            raise MemoryFault(address, "misaligned word write")
        page = self._page(address)
        offset = address & _PAGE_MASK
        page[offset : offset + 4] = (value & 0xFFFF_FFFF).to_bytes(4, "little")

    # -- bulk -------------------------------------------------------------

    def write_bytes(self, address: int, data: bytes) -> None:
        for index, byte in enumerate(data):
            self.write_u8(address + index, byte)

    def read_bytes(self, address: int, length: int) -> bytes:
        return bytes(self.read_u8(address + index) for index in range(length))

    def read_words(self, address: int, count: int) -> list[int]:
        return [self.read_u32(address + 4 * index) for index in range(count)]

    def write_words(self, address: int, words: list[int]) -> None:
        for index, word in enumerate(words):
            self.write_u32(address + 4 * index, word)
