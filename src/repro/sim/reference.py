"""Straight-line reference interpreter for differential testing.

This is the original mnemonic-string-dispatch execution loop the threaded
interpreter in :mod:`repro.sim.cpu` replaced, kept as an executable
specification: it is trivially auditable against the MIPS-I manual, and it
is the oracle both fast engines (threaded closures and the superblock
code generator in :mod:`repro.sim.superblock`) are differentially tested
against -- ``tests/sim/test_threaded.py`` and the randomized harness in
``tests/sim/test_differential.py`` assert bit-identical
:class:`~repro.sim.cpu.RunResult` statistics on the whole benchmark suite
and on generated programs.

One deliberate difference from the seed implementation: ``jalr`` records its
taken edge under profiling, like every other control transfer (the seed
silently dropped indirect call edges from the profile the partitioner
consumes).  The threaded engine matches this *fixed* behaviour.
"""

from __future__ import annotations

from collections import Counter

from repro.binary.image import Executable
from repro.binary.loader import load_into_memory
from repro.errors import SimulationError
from repro.isa.encoding import decode
from repro.sim.cpu import _MNEMONIC_CLASS, STACK_TOP, CpiModel, RunResult
from repro.sim.memory import Memory


def run_reference(
    exe: Executable,
    profile: bool = False,
    max_steps: int = 100_000_000,
    cpi: CpiModel | None = None,
) -> RunResult:
    """Run *exe* to halt on the reference loop; return its statistics."""
    memory = Memory()
    cpi = cpi if cpi is not None else CpiModel()
    load_into_memory(exe, memory)
    decoded = [decode(word) for word in exe.text_words]
    regs = [0] * 32
    regs[29] = STACK_TOP
    text_base = exe.text_base
    text_len = len(decoded)
    mix: Counter = Counter()
    pc_counts: dict[int, int] = {}
    edge_counts: dict[tuple[int, int], int] = {}
    mnem_class = _MNEMONIC_CLASS

    pc = exe.entry
    hi = lo = 0
    steps = 0
    cycles = 0
    halted = False
    mask = 0xFFFF_FFFF

    while steps < max_steps:
        index = (pc - text_base) >> 2
        if not 0 <= index < text_len or pc & 3:
            raise SimulationError(f"pc outside text section: 0x{pc:08x}")
        instr = decoded[index]
        mnem = instr.mnemonic
        steps += 1
        klass = mnem_class[mnem]
        cycles += cpi.cycles_for(klass)
        if profile:
            pc_counts[pc] = pc_counts.get(pc, 0) + 1
            mix[klass] += 1
        next_pc = pc + 4

        if mnem == "addiu" or mnem == "addi":
            regs[instr.rt] = (regs[instr.rs] + instr.imm) & mask
        elif mnem == "lw":
            regs[instr.rt] = memory.read_u32((regs[instr.rs] + instr.imm) & mask)
        elif mnem == "sw":
            memory.write_u32((regs[instr.rs] + instr.imm) & mask, regs[instr.rt])
        elif mnem == "addu" or mnem == "add":
            regs[instr.rd] = (regs[instr.rs] + regs[instr.rt]) & mask
        elif mnem == "subu" or mnem == "sub":
            regs[instr.rd] = (regs[instr.rs] - regs[instr.rt]) & mask
        elif mnem == "sll":
            regs[instr.rd] = (regs[instr.rt] << instr.shamt) & mask
        elif mnem == "srl":
            regs[instr.rd] = regs[instr.rt] >> instr.shamt
        elif mnem == "sra":
            value = regs[instr.rt]
            if value & 0x8000_0000:
                value -= 0x1_0000_0000
            regs[instr.rd] = (value >> instr.shamt) & mask
        elif mnem == "sllv":
            regs[instr.rd] = (regs[instr.rt] << (regs[instr.rs] & 31)) & mask
        elif mnem == "srlv":
            regs[instr.rd] = regs[instr.rt] >> (regs[instr.rs] & 31)
        elif mnem == "srav":
            value = regs[instr.rt]
            if value & 0x8000_0000:
                value -= 0x1_0000_0000
            regs[instr.rd] = (value >> (regs[instr.rs] & 31)) & mask
        elif mnem == "and":
            regs[instr.rd] = regs[instr.rs] & regs[instr.rt]
        elif mnem == "or":
            regs[instr.rd] = regs[instr.rs] | regs[instr.rt]
        elif mnem == "xor":
            regs[instr.rd] = regs[instr.rs] ^ regs[instr.rt]
        elif mnem == "nor":
            regs[instr.rd] = ~(regs[instr.rs] | regs[instr.rt]) & mask
        elif mnem == "slt":
            a, b = regs[instr.rs], regs[instr.rt]
            if a & 0x8000_0000:
                a -= 0x1_0000_0000
            if b & 0x8000_0000:
                b -= 0x1_0000_0000
            regs[instr.rd] = 1 if a < b else 0
        elif mnem == "sltu":
            regs[instr.rd] = 1 if regs[instr.rs] < regs[instr.rt] else 0
        elif mnem == "slti":
            a = regs[instr.rs]
            if a & 0x8000_0000:
                a -= 0x1_0000_0000
            regs[instr.rt] = 1 if a < instr.imm else 0
        elif mnem == "sltiu":
            regs[instr.rt] = 1 if regs[instr.rs] < (instr.imm & mask) else 0
        elif mnem == "andi":
            regs[instr.rt] = regs[instr.rs] & instr.imm
        elif mnem == "ori":
            regs[instr.rt] = regs[instr.rs] | instr.imm
        elif mnem == "xori":
            regs[instr.rt] = regs[instr.rs] ^ instr.imm
        elif mnem == "lui":
            regs[instr.rt] = (instr.imm << 16) & mask
        elif mnem == "lb":
            value = memory.read_u8((regs[instr.rs] + instr.imm) & mask)
            regs[instr.rt] = (value - 0x100 if value & 0x80 else value) & mask
        elif mnem == "lbu":
            regs[instr.rt] = memory.read_u8((regs[instr.rs] + instr.imm) & mask)
        elif mnem == "lh":
            value = memory.read_u16((regs[instr.rs] + instr.imm) & mask)
            regs[instr.rt] = (value - 0x1_0000 if value & 0x8000 else value) & mask
        elif mnem == "lhu":
            regs[instr.rt] = memory.read_u16((regs[instr.rs] + instr.imm) & mask)
        elif mnem == "sb":
            memory.write_u8((regs[instr.rs] + instr.imm) & mask, regs[instr.rt])
        elif mnem == "sh":
            memory.write_u16((regs[instr.rs] + instr.imm) & mask, regs[instr.rt])
        elif mnem in ("beq", "bne", "blez", "bgtz", "bltz", "bgez"):
            a = regs[instr.rs]
            if mnem == "beq":
                cond = a == regs[instr.rt]
            elif mnem == "bne":
                cond = a != regs[instr.rt]
            elif mnem == "blez":
                cond = a == 0 or bool(a & 0x8000_0000)
            elif mnem == "bgtz":
                cond = a != 0 and not a & 0x8000_0000
            elif mnem == "bltz":
                cond = bool(a & 0x8000_0000)
            else:  # bgez
                cond = not a & 0x8000_0000
            if cond:
                next_pc = pc + 4 + (instr.imm << 2)
                cycles += cpi.taken_penalty
                if profile:
                    key = (pc, next_pc)
                    edge_counts[key] = edge_counts.get(key, 0) + 1
        elif mnem == "j":
            next_pc = ((pc + 4) & 0xF000_0000) | (instr.target << 2)
            if profile:
                key = (pc, next_pc)
                edge_counts[key] = edge_counts.get(key, 0) + 1
        elif mnem == "jal":
            regs[31] = pc + 4
            next_pc = ((pc + 4) & 0xF000_0000) | (instr.target << 2)
            if profile:
                key = (pc, next_pc)
                edge_counts[key] = edge_counts.get(key, 0) + 1
        elif mnem == "jr":
            next_pc = regs[instr.rs]
            if profile:
                key = (pc, next_pc)
                edge_counts[key] = edge_counts.get(key, 0) + 1
        elif mnem == "jalr":
            regs[instr.rd] = pc + 4
            next_pc = regs[instr.rs]
            if profile:
                key = (pc, next_pc)
                edge_counts[key] = edge_counts.get(key, 0) + 1
        elif mnem == "mult":
            a, b = regs[instr.rs], regs[instr.rt]
            if a & 0x8000_0000:
                a -= 0x1_0000_0000
            if b & 0x8000_0000:
                b -= 0x1_0000_0000
            product = (a * b) & 0xFFFF_FFFF_FFFF_FFFF
            hi, lo = (product >> 32) & mask, product & mask
        elif mnem == "multu":
            product = regs[instr.rs] * regs[instr.rt]
            hi, lo = (product >> 32) & mask, product & mask
        elif mnem == "div":
            a, b = regs[instr.rs], regs[instr.rt]
            if a & 0x8000_0000:
                a -= 0x1_0000_0000
            if b & 0x8000_0000:
                b -= 0x1_0000_0000
            if b == 0:
                hi, lo = a & mask, mask  # MIPS leaves HI/LO undefined
            else:
                quotient = int(a / b)  # C-style truncation toward zero
                hi, lo = (a - quotient * b) & mask, quotient & mask
        elif mnem == "divu":
            a, b = regs[instr.rs], regs[instr.rt]
            if b == 0:
                hi, lo = a, mask
            else:
                hi, lo = a % b, a // b
        elif mnem == "mfhi":
            regs[instr.rd] = hi
        elif mnem == "mflo":
            regs[instr.rd] = lo
        elif mnem == "mthi":
            hi = regs[instr.rs]
        elif mnem == "mtlo":
            lo = regs[instr.rs]
        elif mnem == "break":
            halted = True
            break
        elif mnem == "syscall":
            raise SimulationError(f"syscall executed at 0x{pc:08x}; benchmarks are I/O-free")
        else:  # pragma: no cover - the decoder only produces known mnemonics
            raise SimulationError(f"unimplemented mnemonic {mnem}")

        regs[0] = 0
        pc = next_pc

    if not halted and steps >= max_steps:
        raise SimulationError(f"exceeded max_steps={max_steps} (pc=0x{pc:08x})")
    if not profile:
        mix = Counter()
    return RunResult(
        steps=steps,
        cycles=cycles,
        halted=halted,
        exit_pc=pc,
        mix=mix,
        pc_counts=pc_counts,
        edge_counts=edge_counts,
    )
