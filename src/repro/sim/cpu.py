"""Functional + cycle-level MIPS-I simulator.

Design notes:

* The text section is pre-decoded once into a flat list; the hot interpreter
  loop dispatches on mnemonic strings with locals bound for speed.  This is
  the standard trade-off for an ISS written in pure Python.
* Timing uses a simple per-class CPI model (:class:`CpiModel`).  Absolute
  accuracy is not the point -- the paper's hypothetical platform is evaluated
  through *ratios* (speedup, energy savings) and the CPI model only needs to
  be a reasonable in-order five-stage approximation.
* ``break`` halts the machine cleanly (the compiler's ``_start`` stub ends
  with one).  ``syscall`` is reserved and raises, keeping benchmarks I/O-free.
* When *profile* is enabled the simulator records per-address execution
  counts and taken-edge counts.  These are exactly the "profiling results"
  the paper's partitioner consumes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.binary.image import Executable
from repro.binary.loader import load_into_memory
from repro.errors import SimulationError
from repro.isa.encoding import decode
from repro.sim.memory import Memory

STACK_TOP = 0x7FFF_FFF0

#: instruction class names used by the timing and energy models
CLASS_ALU = "alu"
CLASS_SHIFT = "shift"
CLASS_LOAD = "load"
CLASS_STORE = "store"
CLASS_BRANCH = "branch"
CLASS_JUMP = "jump"
CLASS_MULT = "mult"
CLASS_DIV = "div"
CLASS_HILO = "hilo"

_MNEMONIC_CLASS = {
    "add": CLASS_ALU, "addu": CLASS_ALU, "sub": CLASS_ALU, "subu": CLASS_ALU,
    "and": CLASS_ALU, "or": CLASS_ALU, "xor": CLASS_ALU, "nor": CLASS_ALU,
    "slt": CLASS_ALU, "sltu": CLASS_ALU,
    "addi": CLASS_ALU, "addiu": CLASS_ALU, "slti": CLASS_ALU, "sltiu": CLASS_ALU,
    "andi": CLASS_ALU, "ori": CLASS_ALU, "xori": CLASS_ALU, "lui": CLASS_ALU,
    "sll": CLASS_SHIFT, "srl": CLASS_SHIFT, "sra": CLASS_SHIFT,
    "sllv": CLASS_SHIFT, "srlv": CLASS_SHIFT, "srav": CLASS_SHIFT,
    "lb": CLASS_LOAD, "lbu": CLASS_LOAD, "lh": CLASS_LOAD, "lhu": CLASS_LOAD,
    "lw": CLASS_LOAD,
    "sb": CLASS_STORE, "sh": CLASS_STORE, "sw": CLASS_STORE,
    "beq": CLASS_BRANCH, "bne": CLASS_BRANCH, "blez": CLASS_BRANCH,
    "bgtz": CLASS_BRANCH, "bltz": CLASS_BRANCH, "bgez": CLASS_BRANCH,
    "j": CLASS_JUMP, "jal": CLASS_JUMP, "jr": CLASS_JUMP, "jalr": CLASS_JUMP,
    "mult": CLASS_MULT, "multu": CLASS_MULT,
    "div": CLASS_DIV, "divu": CLASS_DIV,
    "mfhi": CLASS_HILO, "mflo": CLASS_HILO, "mthi": CLASS_HILO, "mtlo": CLASS_HILO,
    "break": CLASS_JUMP, "syscall": CLASS_JUMP,
}


@dataclass(frozen=True)
class CpiModel:
    """Cycles per instruction class for an in-order five-stage MIPS core.

    Memory costs model the paper-era embedded platform: data lives in
    on-chip SRAM reached over the system bus (no data cache), so loads
    average 4 cycles and stores 2.  This matches the kind of MIPS system
    the warp-processing work evaluated against and is the main reason
    hardware kernels with localized block RAM win big.
    """

    alu: int = 1
    shift: int = 1
    load: int = 4
    store: int = 2
    branch: int = 1
    taken_penalty: int = 1
    jump: int = 2
    mult: int = 4
    div: int = 20
    hilo: int = 1

    def cycles_for(self, klass: str) -> int:
        return getattr(self, klass)


@dataclass
class RunResult:
    """Outcome of one simulation run."""

    steps: int
    cycles: int
    halted: bool
    exit_pc: int
    mix: Counter = field(default_factory=Counter)
    pc_counts: dict[int, int] = field(default_factory=dict)
    edge_counts: dict[tuple[int, int], int] = field(default_factory=dict)

    @property
    def cpi(self) -> float:
        return self.cycles / self.steps if self.steps else 0.0


class Cpu:
    """MIPS-I interpreter over an :class:`Executable` image."""

    def __init__(
        self,
        exe: Executable,
        memory: Memory | None = None,
        cpi: CpiModel | None = None,
        profile: bool = False,
    ):
        self.exe = exe
        self.memory = memory if memory is not None else Memory()
        self.cpi = cpi if cpi is not None else CpiModel()
        self.profile = profile
        load_into_memory(exe, self.memory)
        self._decoded = [decode(word) for word in exe.text_words]
        self.regs = [0] * 32
        self.hi = 0
        self.lo = 0
        self.pc = exe.entry
        self.regs[29] = STACK_TOP  # $sp

    # -- helpers -----------------------------------------------------------

    def read_word_global(self, symbol: str, index: int = 0) -> int:
        """Read a word from a data symbol (test/verification convenience)."""
        address = self.exe.symbols[symbol].address + 4 * index
        return self.memory.read_u32(address)

    def read_word_global_signed(self, symbol: str, index: int = 0) -> int:
        value = self.read_word_global(symbol, index)
        return value - 0x1_0000_0000 if value & 0x8000_0000 else value

    # -- execution ---------------------------------------------------------

    def run(self, max_steps: int = 100_000_000) -> RunResult:
        """Run until ``break`` or *max_steps*; return statistics."""
        regs = self.regs
        memory = self.memory
        text_base = self.exe.text_base
        text_len = len(self._decoded)
        decoded = self._decoded
        cpi = self.cpi
        mix: Counter = Counter()
        pc_counts: dict[int, int] = {}
        edge_counts: dict[tuple[int, int], int] = {}
        profile = self.profile
        mnem_class = _MNEMONIC_CLASS

        pc = self.pc
        hi, lo = self.hi, self.lo
        steps = 0
        cycles = 0
        halted = False
        mask = 0xFFFF_FFFF

        while steps < max_steps:
            index = (pc - text_base) >> 2
            if not 0 <= index < text_len or pc & 3:
                raise SimulationError(f"pc outside text section: 0x{pc:08x}")
            instr = decoded[index]
            mnem = instr.mnemonic
            steps += 1
            klass = mnem_class[mnem]
            cycles += cpi.cycles_for(klass)
            if profile:
                pc_counts[pc] = pc_counts.get(pc, 0) + 1
                mix[klass] += 1
            next_pc = pc + 4

            if mnem == "addiu" or mnem == "addi":
                regs[instr.rt] = (regs[instr.rs] + instr.imm) & mask
            elif mnem == "lw":
                regs[instr.rt] = memory.read_u32((regs[instr.rs] + instr.imm) & mask)
            elif mnem == "sw":
                memory.write_u32((regs[instr.rs] + instr.imm) & mask, regs[instr.rt])
            elif mnem == "addu" or mnem == "add":
                regs[instr.rd] = (regs[instr.rs] + regs[instr.rt]) & mask
            elif mnem == "subu" or mnem == "sub":
                regs[instr.rd] = (regs[instr.rs] - regs[instr.rt]) & mask
            elif mnem == "sll":
                regs[instr.rd] = (regs[instr.rt] << instr.shamt) & mask
            elif mnem == "srl":
                regs[instr.rd] = regs[instr.rt] >> instr.shamt
            elif mnem == "sra":
                value = regs[instr.rt]
                if value & 0x8000_0000:
                    value -= 0x1_0000_0000
                regs[instr.rd] = (value >> instr.shamt) & mask
            elif mnem == "sllv":
                regs[instr.rd] = (regs[instr.rt] << (regs[instr.rs] & 31)) & mask
            elif mnem == "srlv":
                regs[instr.rd] = regs[instr.rt] >> (regs[instr.rs] & 31)
            elif mnem == "srav":
                value = regs[instr.rt]
                if value & 0x8000_0000:
                    value -= 0x1_0000_0000
                regs[instr.rd] = (value >> (regs[instr.rs] & 31)) & mask
            elif mnem == "and":
                regs[instr.rd] = regs[instr.rs] & regs[instr.rt]
            elif mnem == "or":
                regs[instr.rd] = regs[instr.rs] | regs[instr.rt]
            elif mnem == "xor":
                regs[instr.rd] = regs[instr.rs] ^ regs[instr.rt]
            elif mnem == "nor":
                regs[instr.rd] = ~(regs[instr.rs] | regs[instr.rt]) & mask
            elif mnem == "slt":
                a, b = regs[instr.rs], regs[instr.rt]
                if a & 0x8000_0000:
                    a -= 0x1_0000_0000
                if b & 0x8000_0000:
                    b -= 0x1_0000_0000
                regs[instr.rd] = 1 if a < b else 0
            elif mnem == "sltu":
                regs[instr.rd] = 1 if regs[instr.rs] < regs[instr.rt] else 0
            elif mnem == "slti":
                a = regs[instr.rs]
                if a & 0x8000_0000:
                    a -= 0x1_0000_0000
                regs[instr.rt] = 1 if a < instr.imm else 0
            elif mnem == "sltiu":
                regs[instr.rt] = 1 if regs[instr.rs] < (instr.imm & mask) else 0
            elif mnem == "andi":
                regs[instr.rt] = regs[instr.rs] & instr.imm
            elif mnem == "ori":
                regs[instr.rt] = regs[instr.rs] | instr.imm
            elif mnem == "xori":
                regs[instr.rt] = regs[instr.rs] ^ instr.imm
            elif mnem == "lui":
                regs[instr.rt] = (instr.imm << 16) & mask
            elif mnem == "lb":
                value = memory.read_u8((regs[instr.rs] + instr.imm) & mask)
                regs[instr.rt] = (value - 0x100 if value & 0x80 else value) & mask
            elif mnem == "lbu":
                regs[instr.rt] = memory.read_u8((regs[instr.rs] + instr.imm) & mask)
            elif mnem == "lh":
                value = memory.read_u16((regs[instr.rs] + instr.imm) & mask)
                regs[instr.rt] = (value - 0x1_0000 if value & 0x8000 else value) & mask
            elif mnem == "lhu":
                regs[instr.rt] = memory.read_u16((regs[instr.rs] + instr.imm) & mask)
            elif mnem == "sb":
                memory.write_u8((regs[instr.rs] + instr.imm) & mask, regs[instr.rt])
            elif mnem == "sh":
                memory.write_u16((regs[instr.rs] + instr.imm) & mask, regs[instr.rt])
            elif mnem == "beq":
                if regs[instr.rs] == regs[instr.rt]:
                    next_pc = pc + 4 + (instr.imm << 2)
                    cycles += cpi.taken_penalty
                    if profile:
                        key = (pc, next_pc)
                        edge_counts[key] = edge_counts.get(key, 0) + 1
            elif mnem == "bne":
                if regs[instr.rs] != regs[instr.rt]:
                    next_pc = pc + 4 + (instr.imm << 2)
                    cycles += cpi.taken_penalty
                    if profile:
                        key = (pc, next_pc)
                        edge_counts[key] = edge_counts.get(key, 0) + 1
            elif mnem == "blez":
                value = regs[instr.rs]
                if value == 0 or value & 0x8000_0000:
                    next_pc = pc + 4 + (instr.imm << 2)
                    cycles += cpi.taken_penalty
                    if profile:
                        key = (pc, next_pc)
                        edge_counts[key] = edge_counts.get(key, 0) + 1
            elif mnem == "bgtz":
                value = regs[instr.rs]
                if value != 0 and not value & 0x8000_0000:
                    next_pc = pc + 4 + (instr.imm << 2)
                    cycles += cpi.taken_penalty
                    if profile:
                        key = (pc, next_pc)
                        edge_counts[key] = edge_counts.get(key, 0) + 1
            elif mnem == "bltz":
                if regs[instr.rs] & 0x8000_0000:
                    next_pc = pc + 4 + (instr.imm << 2)
                    cycles += cpi.taken_penalty
                    if profile:
                        key = (pc, next_pc)
                        edge_counts[key] = edge_counts.get(key, 0) + 1
            elif mnem == "bgez":
                if not regs[instr.rs] & 0x8000_0000:
                    next_pc = pc + 4 + (instr.imm << 2)
                    cycles += cpi.taken_penalty
                    if profile:
                        key = (pc, next_pc)
                        edge_counts[key] = edge_counts.get(key, 0) + 1
            elif mnem == "j":
                next_pc = ((pc + 4) & 0xF000_0000) | (instr.target << 2)
                if profile:
                    key = (pc, next_pc)
                    edge_counts[key] = edge_counts.get(key, 0) + 1
            elif mnem == "jal":
                regs[31] = pc + 4
                next_pc = ((pc + 4) & 0xF000_0000) | (instr.target << 2)
                if profile:
                    key = (pc, ((pc + 4) & 0xF000_0000) | (instr.target << 2))
                    edge_counts[key] = edge_counts.get(key, 0) + 1
            elif mnem == "jr":
                next_pc = regs[instr.rs]
                if profile:
                    key = (pc, next_pc)
                    edge_counts[key] = edge_counts.get(key, 0) + 1
            elif mnem == "jalr":
                regs[instr.rd] = pc + 4
                next_pc = regs[instr.rs]
            elif mnem == "mult":
                a, b = regs[instr.rs], regs[instr.rt]
                if a & 0x8000_0000:
                    a -= 0x1_0000_0000
                if b & 0x8000_0000:
                    b -= 0x1_0000_0000
                product = (a * b) & 0xFFFF_FFFF_FFFF_FFFF
                hi, lo = (product >> 32) & mask, product & mask
            elif mnem == "multu":
                product = regs[instr.rs] * regs[instr.rt]
                hi, lo = (product >> 32) & mask, product & mask
            elif mnem == "div":
                a, b = regs[instr.rs], regs[instr.rt]
                if a & 0x8000_0000:
                    a -= 0x1_0000_0000
                if b & 0x8000_0000:
                    b -= 0x1_0000_0000
                if b == 0:
                    hi, lo = a & mask, mask  # MIPS leaves HI/LO undefined; pick stable values
                else:
                    quotient = int(a / b)  # C-style truncation toward zero
                    hi, lo = (a - quotient * b) & mask, quotient & mask
            elif mnem == "divu":
                a, b = regs[instr.rs], regs[instr.rt]
                if b == 0:
                    hi, lo = a, mask
                else:
                    hi, lo = a % b, a // b
            elif mnem == "mfhi":
                regs[instr.rd] = hi
            elif mnem == "mflo":
                regs[instr.rd] = lo
            elif mnem == "mthi":
                hi = regs[instr.rs]
            elif mnem == "mtlo":
                lo = regs[instr.rs]
            elif mnem == "break":
                halted = True
                if profile:
                    pass
                break
            elif mnem == "syscall":
                raise SimulationError(f"syscall executed at 0x{pc:08x}; benchmarks are I/O-free")
            else:  # pragma: no cover - the decoder only produces known mnemonics
                raise SimulationError(f"unimplemented mnemonic {mnem}")

            regs[0] = 0
            pc = next_pc

        self.pc = pc
        self.hi, self.lo = hi, lo
        if not halted and steps >= max_steps:
            raise SimulationError(f"exceeded max_steps={max_steps} (pc=0x{pc:08x})")
        if not profile:
            mix = Counter()
        return RunResult(
            steps=steps,
            cycles=cycles,
            halted=halted,
            exit_pc=pc,
            mix=mix,
            pc_counts=pc_counts,
            edge_counts=edge_counts,
        )


def run_executable(
    exe: Executable,
    profile: bool = False,
    max_steps: int = 100_000_000,
    cpi: CpiModel | None = None,
) -> tuple[Cpu, RunResult]:
    """Convenience: build a CPU for *exe*, run to halt, return (cpu, result)."""
    cpu = Cpu(exe, cpi=cpi, profile=profile)
    result = cpu.run(max_steps=max_steps)
    return cpu, result
