"""Functional + cycle-level MIPS-I simulator (threaded + superblock dispatch).

Design notes:

* The text section is pre-decoded **once, at construction**, into a flat
  table of per-instruction executors: each text word becomes a closure with
  its operand registers, immediates and (for control transfers) target
  *indices* already bound.  The threaded hot loop is then just

      counts[index] += 1
      index = handlers[index]()

  -- no string compares, no ``getattr``, no per-step attribute lookups.
  This is the classic threaded-code trade-off for an ISS written in pure
  Python and is worth ~5x over the old mnemonic-string dispatch chain.
* On top of that table the default **superblock** engine
  (:mod:`repro.sim.superblock`) compiles the whole program into one
  generated Python module -- one function per basic block (with
  unconditional ``j``/``jal`` chains fused into their targets) -- so the
  dispatch loop pays one call per block or chain instead of per
  instruction.  After ``trace_threshold`` dispatch sprees it adds a
  **trace tier**: the hottest taken-branch paths become multi-block
  generated traces with guarded side exits, and hot loops run many
  iterations inside a single call; counters proven cold are spilled out
  of the fold scan (``spill_after``) and reheat transparently.  The
  threaded table stays fully built either way: the superblock loop
  falls back to it to single-step chunk tails (exact sampling
  boundaries) and dynamic mid-block jump targets.  Select with
  ``Cpu(exe, engine="threaded"|"superblock")``; ``trace_threshold=0``
  keeps the block tier only.
* Statistics are *derived*, not collected: the loop maintains one
  per-instruction execution counter; branch executors bump a per-site
  taken counter.  ``steps``, ``cycles``, ``pc_counts``, ``mix`` and the
  static part of ``edge_counts`` all fall out of those arrays in a single
  O(text) pass at exit.  Only register-indirect jumps (``jr``/``jalr``)
  record their (dynamic) edges directly.
* Timing uses a simple per-class CPI model (:class:`CpiModel`).  Absolute
  accuracy is not the point -- the paper's hypothetical platform is evaluated
  through *ratios* (speedup, energy savings) and the CPI model only needs to
  be a reasonable in-order five-stage approximation.
* ``break`` halts the machine cleanly (the compiler's ``_start`` stub ends
  with one).  ``syscall`` is reserved and raises, keeping benchmarks I/O-free.
* A **periodic sampling hook** supports online (run-time) profiling: pass
  ``on_sample``/``sample_interval`` to :meth:`Cpu.run` and the dispatch loop
  executes in chunks of *sample_interval* instructions, invoking the callback
  between chunks with the live per-site counter arrays.  The chunking happens
  *outside* the dispatch loop, so a run without a callback executes the exact
  same single ``repeat`` loop as before -- zero hot-path cost -- and a run
  with one pays only the callback itself every N instructions.  This is what
  the warp-style dynamic partitioner (:mod:`repro.dynamic`) piggybacks on.
* When *profile* is enabled the simulator records per-address execution
  counts and taken-edge counts.  These are exactly the "profiling results"
  the paper's partitioner consumes.

``tests/sim/test_threaded.py`` checks this engine differentially against
the straight-line reference interpreter in :mod:`repro.sim.reference`.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from itertools import repeat

from repro import obs
from repro.binary.image import Executable
from repro.binary.loader import load_into_memory
from repro.errors import SimulationError
from repro.isa.encoding import decode
from repro.isa.instructions import (
    CLASS_ALU,
    CLASS_BRANCH,
    CLASS_DIV,
    CLASS_HILO,
    CLASS_JUMP,
    CLASS_LOAD,
    CLASS_MULT,
    CLASS_SHIFT,
    CLASS_STORE,
    SPECS,
)
from repro.sim.memory import Memory

STACK_TOP = 0x7FFF_FFF0

__all__ = [
    "CLASS_ALU", "CLASS_SHIFT", "CLASS_LOAD", "CLASS_STORE", "CLASS_BRANCH",
    "CLASS_JUMP", "CLASS_MULT", "CLASS_DIV", "CLASS_HILO",
    "CpiModel", "Cpu", "RunResult", "run_executable", "STACK_TOP",
]

#: mnemonic -> timing class, derived from the ISA spec table.
_MNEMONIC_CLASS = {mnem: spec.klass for mnem, spec in SPECS.items()}

#: trace-tier warmup runs at most this many incremental build rounds
#: (checkpoints past ``trace_threshold``) before sprees go unbounded
_WARMUP_BUILDS = 8

#: post-warmup monitoring sprees (the re-planning watermark) are capped
#: at this multiple of ``spree_size`` instructions -- coarse enough that
#: steady state pays a handful of extra folds, fine enough that a phase
#: shift is noticed within a few multiples of the warmup budget
_MONITOR_SPREES = 4


class _Halt(Exception):
    """Raised by the ``break`` executor to leave the dispatch loop.

    Superblock-generated ``break`` code raises it with the instruction
    *index* of the ``break`` as its only argument, so the dispatch loop can
    report the precise halt pc even though it only tracks block entries;
    the per-instruction threaded executors raise it bare (the loop variable
    already points at the ``break``).
    """


@dataclass(frozen=True)
class CpiModel:
    """Cycles per instruction class for an in-order five-stage MIPS core.

    Memory costs model the paper-era embedded platform: data lives in
    on-chip SRAM reached over the system bus (no data cache), so loads
    average 4 cycles and stores 2.  This matches the kind of MIPS system
    the warp-processing work evaluated against and is the main reason
    hardware kernels with localized block RAM win big.
    """

    alu: int = 1
    shift: int = 1
    load: int = 4
    store: int = 2
    branch: int = 1
    taken_penalty: int = 1
    jump: int = 2
    mult: int = 4
    div: int = 20
    hilo: int = 1

    def cycles_for(self, klass: str) -> int:
        return getattr(self, klass)


@dataclass
class RunResult:
    """Outcome of one simulation run."""

    steps: int
    cycles: int
    halted: bool
    exit_pc: int
    mix: Counter = field(default_factory=Counter)
    pc_counts: dict[int, int] = field(default_factory=dict)
    edge_counts: dict[tuple[int, int], int] = field(default_factory=dict)

    @property
    def cpi(self) -> float:
        return self.cycles / self.steps if self.steps else 0.0


class Cpu:
    """MIPS-I threaded-code interpreter over an :class:`Executable` image."""

    def __init__(
        self,
        exe: Executable,
        memory: Memory | None = None,
        cpi: CpiModel | None = None,
        profile: bool = False,
        engine: str = "superblock",
        trace_threshold: int = 1,
        spree_size: int = 32768,
        spill_after: int = 8,
        replan_threshold: float = 0.25,
        trace_persist: bool | None = None,
    ):
        if engine not in ("superblock", "threaded"):
            raise ValueError(
                f"unknown engine {engine!r}; expected 'superblock' or 'threaded'"
            )
        if not isinstance(trace_threshold, int) or isinstance(trace_threshold, bool) \
                or trace_threshold < 0:
            raise ValueError(
                f"trace_threshold must be a non-negative integer (0 disables "
                f"the trace tier), got {trace_threshold!r}"
            )
        if not isinstance(spree_size, int) or isinstance(spree_size, bool) \
                or spree_size < 1:
            raise ValueError(
                f"spree_size must be a positive integer, got {spree_size!r}"
            )
        if not isinstance(spill_after, int) or isinstance(spill_after, bool) \
                or spill_after < 0:
            raise ValueError(
                f"spill_after must be a non-negative integer (0 disables the "
                f"cold-counter spill), got {spill_after!r}"
            )
        if not isinstance(replan_threshold, (int, float)) \
                or isinstance(replan_threshold, bool) \
                or not 0.0 <= replan_threshold < 1.0:
            raise ValueError(
                f"replan_threshold must be a float in [0, 1) (0 disables "
                f"trace re-planning), got {replan_threshold!r}"
            )
        self.exe = exe
        self.memory = memory if memory is not None else Memory()
        self._cpi = cpi if cpi is not None else CpiModel()
        self._profile = profile
        self._engine = engine
        self._trace_threshold = trace_threshold
        self._spree_size = spree_size
        self._spill_after = spill_after
        self._replan_threshold = float(replan_threshold)
        self._trace_persist = trace_persist
        load_into_memory(exe, self.memory)
        self._decoded = [decode(word) for word in exe.text_words]
        self.regs = [0] * 32
        self.hi = 0
        self.lo = 0
        self.pc = exe.entry
        self.regs[29] = STACK_TOP  # $sp
        # mutable cells shared with the executor closures
        self._hilo = [0, 0]
        self._taken = [0] * len(self._decoded)
        self._dyn_edges: dict[tuple[int, int], int] = {}
        self._build_table()
        if engine == "superblock":
            # deferred import: the superblock package imports _Halt from
            # this module
            from repro.sim.superblock import SuperblockTable

            self._sb = SuperblockTable(self)
        else:
            self._sb = None

    # The executor table bakes cycle costs and profile hooks in at build
    # time, so these are constructor-only: assigning them later would
    # silently leave a stale table behind.
    @property
    def cpi(self) -> CpiModel:
        return self._cpi

    @property
    def profile(self) -> bool:
        return self._profile

    @property
    def engine(self) -> str:
        """Dispatch engine: ``"superblock"`` (default) or ``"threaded"``."""
        return self._engine

    @property
    def superblocks(self) -> list[tuple[int, int]]:
        """The superblock partition as (start index, length) pairs.

        Only meaningful on the superblock engine; every decoded instruction
        belongs to exactly one block and blocks end only at control
        transfers or immediately before another block's leader.
        """
        if self._sb is None:
            raise SimulationError("superblocks require engine='superblock'")
        return self._sb.blocks

    @property
    def traces(self) -> tuple:
        """Installed hot-path traces, as :class:`TraceInfo` handles.

        Empty until the dispatch loop has run ``trace_threshold`` sprees
        on a program hot enough to plan traces from (and always empty
        with ``trace_threshold=0``, which disables the tier).
        """
        if self._sb is None:
            raise SimulationError("traces require engine='superblock'")
        return tuple(self._sb.traces)

    # Static control-transfer sites, exposed for online profilers: maps of
    # instruction index -> (source pc, target pc).  Branch edges count via
    # the per-site taken array; jump edges via the execution counters.
    @property
    def branch_edges(self) -> dict[int, tuple[int, int]]:
        return self._branch_edges

    @property
    def jump_edges(self) -> dict[int, tuple[int, int]]:
        return self._jump_edges

    @property
    def site_costs(self) -> list[int]:
        """Per-instruction-index cycle cost (without taken penalties)."""
        return self._costs

    # -- helpers -----------------------------------------------------------

    def read_word_global(self, symbol: str, index: int = 0) -> int:
        """Read a word from a data symbol (test/verification convenience)."""
        address = self.exe.symbols[symbol].address + 4 * index
        return self.memory.read_u32(address)

    def read_word_global_signed(self, symbol: str, index: int = 0) -> int:
        value = self.read_word_global(symbol, index)
        return value - 0x1_0000_0000 if value & 0x8000_0000 else value

    # -- executor table ----------------------------------------------------

    def _build_table(self) -> None:
        """Translate the decoded text into the executor/cost/class tables.

        Each executor is a zero-argument closure that performs one
        instruction and returns the *index* of the next one.  Straight-line
        successors and static branch/jump targets are resolved to indices
        here, so the dispatch loop never converts pc -> index; only the
        register-indirect jumps (``jr``/``jalr``) do, validating their
        dynamic target as the old interpreter's loop guard did.
        """
        regs = self.regs
        memory = self.memory
        read_u8 = memory.read_u8
        read_u16 = memory.read_u16
        read_u32 = memory.read_u32
        write_u8 = memory.write_u8
        write_u16 = memory.write_u16
        write_u32 = memory.write_u32
        hilo = self._hilo
        taken = self._taken
        dyn_edges = self._dyn_edges
        profile = self.profile
        text_base = self.exe.text_base
        text_len = len(self._decoded)
        M = 0xFFFF_FFFF

        def escape(bad_pc: int):
            def h():
                raise SimulationError(f"pc outside text section: 0x{bad_pc:08x}")
            return h

        # Escape slots appended after the text: slot text_len catches
        # fall-through past the end; further slots serve as the "taken"
        # continuation of any static branch/jump whose target lies outside
        # the text section (the old loop guard faulted on the next fetch).
        # Memoized per bad pc so the superblock code generator can resolve
        # the very same slot for the very same out-of-text target.
        extra_escapes: list = []
        escape_slots: dict[int, int] = {}

        def escape_index(bad_pc: int) -> int:
            slot = escape_slots.get(bad_pc)
            if slot is None:
                extra_escapes.append(escape(bad_pc))
                slot = text_len + len(extra_escapes)
                escape_slots[bad_pc] = slot
            return slot

        def branch_target(pc: int, imm: int):
            """(taken index, taken pc | None if out of text) for a branch."""
            t_pc = pc + 4 + (imm << 2)
            t_idx = (t_pc - text_base) >> 2
            if not 0 <= t_idx < text_len:
                return escape_index(t_pc), None
            return t_idx, t_pc

        handlers = []
        costs: list[int] = []
        klasses: list[str] = []
        #: index -> static (src, dst) edge; count = taken[i] for branches,
        #: counts[i] for j/jal (which are always taken)
        branch_edges: dict[int, tuple[int, int]] = {}
        jump_edges: dict[int, tuple[int, int]] = {}

        cpi = self.cpi
        for index, instr in enumerate(self._decoded):
            pc = text_base + (index << 2)
            nxt = index + 1
            m = instr.mnemonic
            rs, rt, rd = instr.rs, instr.rt, instr.rd
            shamt, imm = instr.shamt, instr.imm
            klass = _MNEMONIC_CLASS[m]
            klasses.append(klass)
            costs.append(cpi.cycles_for(klass))

            if m == "addiu" or m == "addi":
                if rt:
                    def h(rs=rs, rt=rt, imm=imm, nxt=nxt):
                        regs[rt] = (regs[rs] + imm) & M
                        return nxt
                else:
                    def h(nxt=nxt):
                        return nxt
            elif m == "lw":
                if rt:
                    def h(rs=rs, rt=rt, imm=imm, nxt=nxt):
                        regs[rt] = read_u32((regs[rs] + imm) & M)
                        return nxt
                else:
                    def h(rs=rs, imm=imm, nxt=nxt):
                        read_u32((regs[rs] + imm) & M)
                        return nxt
            elif m == "sw":
                def h(rs=rs, rt=rt, imm=imm, nxt=nxt):
                    write_u32((regs[rs] + imm) & M, regs[rt])
                    return nxt
            elif m in ("addu", "add", "subu", "sub", "and", "or", "xor",
                       "nor", "slt", "sltu"):
                if not rd:
                    def h(nxt=nxt):
                        return nxt
                elif m == "addu" or m == "add":
                    def h(rs=rs, rt=rt, rd=rd, nxt=nxt):
                        regs[rd] = (regs[rs] + regs[rt]) & M
                        return nxt
                elif m == "subu" or m == "sub":
                    def h(rs=rs, rt=rt, rd=rd, nxt=nxt):
                        regs[rd] = (regs[rs] - regs[rt]) & M
                        return nxt
                elif m == "and":
                    def h(rs=rs, rt=rt, rd=rd, nxt=nxt):
                        regs[rd] = regs[rs] & regs[rt]
                        return nxt
                elif m == "or":
                    def h(rs=rs, rt=rt, rd=rd, nxt=nxt):
                        regs[rd] = regs[rs] | regs[rt]
                        return nxt
                elif m == "xor":
                    def h(rs=rs, rt=rt, rd=rd, nxt=nxt):
                        regs[rd] = regs[rs] ^ regs[rt]
                        return nxt
                elif m == "nor":
                    def h(rs=rs, rt=rt, rd=rd, nxt=nxt):
                        regs[rd] = ~(regs[rs] | regs[rt]) & M
                        return nxt
                elif m == "slt":
                    def h(rs=rs, rt=rt, rd=rd, nxt=nxt):
                        a, b = regs[rs], regs[rt]
                        if a & 0x8000_0000:
                            a -= 0x1_0000_0000
                        if b & 0x8000_0000:
                            b -= 0x1_0000_0000
                        regs[rd] = 1 if a < b else 0
                        return nxt
                else:  # sltu
                    def h(rs=rs, rt=rt, rd=rd, nxt=nxt):
                        regs[rd] = 1 if regs[rs] < regs[rt] else 0
                        return nxt
            elif m in ("sll", "srl", "sra", "sllv", "srlv", "srav"):
                if not rd:
                    def h(nxt=nxt):  # includes the canonical nop
                        return nxt
                elif m == "sll":
                    def h(rt=rt, rd=rd, shamt=shamt, nxt=nxt):
                        regs[rd] = (regs[rt] << shamt) & M
                        return nxt
                elif m == "srl":
                    def h(rt=rt, rd=rd, shamt=shamt, nxt=nxt):
                        regs[rd] = regs[rt] >> shamt
                        return nxt
                elif m == "sra":
                    def h(rt=rt, rd=rd, shamt=shamt, nxt=nxt):
                        value = regs[rt]
                        if value & 0x8000_0000:
                            value -= 0x1_0000_0000
                        regs[rd] = (value >> shamt) & M
                        return nxt
                elif m == "sllv":
                    def h(rs=rs, rt=rt, rd=rd, nxt=nxt):
                        regs[rd] = (regs[rt] << (regs[rs] & 31)) & M
                        return nxt
                elif m == "srlv":
                    def h(rs=rs, rt=rt, rd=rd, nxt=nxt):
                        regs[rd] = regs[rt] >> (regs[rs] & 31)
                        return nxt
                else:  # srav
                    def h(rs=rs, rt=rt, rd=rd, nxt=nxt):
                        value = regs[rt]
                        if value & 0x8000_0000:
                            value -= 0x1_0000_0000
                        regs[rd] = (value >> (regs[rs] & 31)) & M
                        return nxt
            elif m in ("slti", "sltiu", "andi", "ori", "xori", "lui"):
                if not rt:
                    def h(nxt=nxt):
                        return nxt
                elif m == "slti":
                    def h(rs=rs, rt=rt, imm=imm, nxt=nxt):
                        a = regs[rs]
                        if a & 0x8000_0000:
                            a -= 0x1_0000_0000
                        regs[rt] = 1 if a < imm else 0
                        return nxt
                elif m == "sltiu":
                    def h(rs=rs, rt=rt, imm=imm & M, nxt=nxt):
                        regs[rt] = 1 if regs[rs] < imm else 0
                        return nxt
                elif m == "andi":
                    def h(rs=rs, rt=rt, imm=imm, nxt=nxt):
                        regs[rt] = regs[rs] & imm
                        return nxt
                elif m == "ori":
                    def h(rs=rs, rt=rt, imm=imm, nxt=nxt):
                        regs[rt] = regs[rs] | imm
                        return nxt
                elif m == "xori":
                    def h(rs=rs, rt=rt, imm=imm, nxt=nxt):
                        regs[rt] = regs[rs] ^ imm
                        return nxt
                else:  # lui
                    def h(rt=rt, value=(imm << 16) & M, nxt=nxt):
                        regs[rt] = value
                        return nxt
            elif m in ("lb", "lbu", "lh", "lhu"):
                if not rt:
                    def h(rs=rs, imm=imm, nxt=nxt,
                          read=read_u8 if m in ("lb", "lbu") else read_u16):
                        read((regs[rs] + imm) & M)
                        return nxt
                elif m == "lb":
                    def h(rs=rs, rt=rt, imm=imm, nxt=nxt):
                        value = read_u8((regs[rs] + imm) & M)
                        regs[rt] = (value - 0x100 if value & 0x80 else value) & M
                        return nxt
                elif m == "lbu":
                    def h(rs=rs, rt=rt, imm=imm, nxt=nxt):
                        regs[rt] = read_u8((regs[rs] + imm) & M)
                        return nxt
                elif m == "lh":
                    def h(rs=rs, rt=rt, imm=imm, nxt=nxt):
                        value = read_u16((regs[rs] + imm) & M)
                        regs[rt] = (value - 0x1_0000 if value & 0x8000 else value) & M
                        return nxt
                else:  # lhu
                    def h(rs=rs, rt=rt, imm=imm, nxt=nxt):
                        regs[rt] = read_u16((regs[rs] + imm) & M)
                        return nxt
            elif m == "sb":
                def h(rs=rs, rt=rt, imm=imm, nxt=nxt):
                    write_u8((regs[rs] + imm) & M, regs[rt])
                    return nxt
            elif m == "sh":
                def h(rs=rs, rt=rt, imm=imm, nxt=nxt):
                    write_u16((regs[rs] + imm) & M, regs[rt])
                    return nxt
            elif m in ("beq", "bne", "blez", "bgtz", "bltz", "bgez"):
                t_idx, t_pc = branch_target(pc, imm)
                if t_pc is not None:
                    branch_edges[index] = (pc, t_pc)
                if m == "beq":
                    def h(rs=rs, rt=rt, t=t_idx, i=index, nxt=nxt):
                        if regs[rs] == regs[rt]:
                            taken[i] += 1
                            return t
                        return nxt
                elif m == "bne":
                    def h(rs=rs, rt=rt, t=t_idx, i=index, nxt=nxt):
                        if regs[rs] != regs[rt]:
                            taken[i] += 1
                            return t
                        return nxt
                elif m == "blez":
                    def h(rs=rs, t=t_idx, i=index, nxt=nxt):
                        value = regs[rs]
                        if value == 0 or value & 0x8000_0000:
                            taken[i] += 1
                            return t
                        return nxt
                elif m == "bgtz":
                    def h(rs=rs, t=t_idx, i=index, nxt=nxt):
                        value = regs[rs]
                        if value != 0 and not value & 0x8000_0000:
                            taken[i] += 1
                            return t
                        return nxt
                elif m == "bltz":
                    def h(rs=rs, t=t_idx, i=index, nxt=nxt):
                        if regs[rs] & 0x8000_0000:
                            taken[i] += 1
                            return t
                        return nxt
                else:  # bgez
                    def h(rs=rs, t=t_idx, i=index, nxt=nxt):
                        if not regs[rs] & 0x8000_0000:
                            taken[i] += 1
                            return t
                        return nxt
            elif m == "j" or m == "jal":
                t_pc = ((pc + 4) & 0xF000_0000) | (instr.target << 2)
                t_idx = (t_pc - text_base) >> 2
                if not 0 <= t_idx < text_len:
                    t_idx = escape_index(t_pc)
                else:
                    jump_edges[index] = (pc, t_pc)
                if m == "j":
                    def h(t=t_idx):
                        return t
                else:
                    def h(t=t_idx, link=pc + 4):
                        regs[31] = link
                        return t
            elif m == "jr" or m == "jalr":
                link = pc + 4
                if m == "jr":
                    def pre(rs=rs):
                        return regs[rs]
                elif rd:
                    def pre(rs=rs, rd=rd, link=link):
                        regs[rd] = link
                        return regs[rs]
                else:
                    def pre(rs=rs):
                        return regs[rs]
                if profile:
                    def h(pre=pre, pc=pc):
                        t = pre()
                        i = (t - text_base) >> 2
                        if t & 3 or not 0 <= i < text_len:
                            raise SimulationError(
                                f"pc outside text section: 0x{t:08x}")
                        key = (pc, t)
                        dyn_edges[key] = dyn_edges.get(key, 0) + 1
                        return i
                else:
                    def h(pre=pre):
                        t = pre()
                        i = (t - text_base) >> 2
                        if t & 3 or not 0 <= i < text_len:
                            raise SimulationError(
                                f"pc outside text section: 0x{t:08x}")
                        return i
            elif m == "mult" or m == "multu":
                if m == "mult":
                    def h(rs=rs, rt=rt, nxt=nxt):
                        a, b = regs[rs], regs[rt]
                        if a & 0x8000_0000:
                            a -= 0x1_0000_0000
                        if b & 0x8000_0000:
                            b -= 0x1_0000_0000
                        product = (a * b) & 0xFFFF_FFFF_FFFF_FFFF
                        hilo[0] = (product >> 32) & M
                        hilo[1] = product & M
                        return nxt
                else:
                    def h(rs=rs, rt=rt, nxt=nxt):
                        product = regs[rs] * regs[rt]
                        hilo[0] = (product >> 32) & M
                        hilo[1] = product & M
                        return nxt
            elif m == "div":
                def h(rs=rs, rt=rt, nxt=nxt):
                    a, b = regs[rs], regs[rt]
                    if a & 0x8000_0000:
                        a -= 0x1_0000_0000
                    if b & 0x8000_0000:
                        b -= 0x1_0000_0000
                    if b == 0:
                        # MIPS leaves HI/LO undefined; pick stable values
                        hilo[0], hilo[1] = a & M, M
                    else:
                        quotient = int(a / b)  # C-style truncation toward zero
                        hilo[0] = (a - quotient * b) & M
                        hilo[1] = quotient & M
                    return nxt
            elif m == "divu":
                def h(rs=rs, rt=rt, nxt=nxt):
                    a, b = regs[rs], regs[rt]
                    if b == 0:
                        hilo[0], hilo[1] = a, M
                    else:
                        hilo[0], hilo[1] = a % b, a // b
                    return nxt
            elif m == "mfhi":
                if rd:
                    def h(rd=rd, nxt=nxt):
                        regs[rd] = hilo[0]
                        return nxt
                else:
                    def h(nxt=nxt):
                        return nxt
            elif m == "mflo":
                if rd:
                    def h(rd=rd, nxt=nxt):
                        regs[rd] = hilo[1]
                        return nxt
                else:
                    def h(nxt=nxt):
                        return nxt
            elif m == "mthi":
                def h(rs=rs, nxt=nxt):
                    hilo[0] = regs[rs]
                    return nxt
            elif m == "mtlo":
                def h(rs=rs, nxt=nxt):
                    hilo[1] = regs[rs]
                    return nxt
            elif m == "break":
                def h():
                    raise _Halt
            elif m == "syscall":
                def h(pc=pc):
                    raise SimulationError(
                        f"syscall executed at 0x{pc:08x}; benchmarks are I/O-free")
            else:  # pragma: no cover - the decoder only produces known mnemonics
                raise SimulationError(f"unimplemented mnemonic {m}")

            handlers.append(h)

        # fall-through past the last instruction lands here
        handlers.append(escape(text_base + (text_len << 2)))
        handlers.extend(extra_escapes)

        self._handlers = handlers
        self._costs = costs
        self._klasses = klasses
        self._branch_edges = branch_edges
        self._jump_edges = jump_edges
        self._escape_slots = escape_slots

    # -- execution ---------------------------------------------------------

    def run(
        self,
        max_steps: int = 100_000_000,
        sample_interval: int = 0,
        on_sample=None,
    ) -> RunResult:
        """Run until ``break`` or *max_steps*; return statistics.

        When *on_sample* is given, the dispatch loop runs in chunks of
        *sample_interval* instructions and ``on_sample(counts, taken)`` is
        called between chunks (and once more when the program halts) with
        the **live** cumulative counter arrays -- callbacks must copy
        anything they want to keep.  ``counts[i]``/``taken[i]`` are the
        execution/branch-taken counters of instruction index ``i``
        (address ``text_base + 4*i``).  Chunk boundaries land on exactly
        the same instruction counts on both dispatch engines: the
        superblock loop only runs a whole block when it fits in the
        remaining chunk budget and single-steps the tail otherwise.

        A callback may return a positive integer to set the *next* chunk's
        sample interval (phase-adaptive sampling); any falsy return keeps
        the current interval.
        """
        if on_sample is not None and sample_interval > 0:
            # the chunked dispatch lives in exactly one place -- the
            # run_sampled generator; this path just feeds its yields to the
            # callback (cost: one generator resume per chunk, invisible
            # next to the callback itself)
            generator = self.run_sampled(max_steps, sample_interval)
            try:
                payload = next(generator)
                while True:
                    payload = generator.send(on_sample(*payload))
            except StopIteration as stop:
                return stop.value

        text_base = self.exe.text_base
        text_len = len(self._decoded)
        taken = self._taken
        taken[:] = [0] * text_len
        self._dyn_edges.clear()
        self._hilo[0], self._hilo[1] = self.hi, self.lo
        counts = [0] * len(self._handlers)

        pc = self.pc
        index = (pc - text_base) >> 2
        if pc & 3 or not 0 <= index < text_len:
            raise SimulationError(f"pc outside text section: 0x{pc:08x}")

        run_started = time.monotonic()
        if self._sb is not None:
            index, halted = self._run_superblock(index, counts, max_steps)
        else:
            index, halted = self._run_threaded(index, counts, max_steps)

        pc = text_base + (index << 2)
        self.pc = pc
        self.hi, self.lo = self._hilo[0], self._hilo[1]
        if not halted:
            raise SimulationError(f"exceeded max_steps={max_steps} (pc=0x{pc:08x})")

        result = self._gather(counts)
        if obs.metrics_enabled():
            self._observe_run(result, time.monotonic() - run_started)
        return result

    def run_sampled(self, max_steps: int = 100_000_000,
                    sample_interval: int = 4_000):
        """Generator twin of :meth:`run` for externally-driven sampling.

        Yields ``(counts, taken)`` -- the live cumulative counter arrays --
        at every *sample_interval*-instruction boundary and once more when
        the program halts, exactly where :meth:`run` would invoke
        ``on_sample``.  ``send()`` a positive integer into the generator to
        set the next chunk's interval (same contract as an ``on_sample``
        return value).  The :class:`RunResult` is the generator's return
        value (``StopIteration.value``).

        This inversion of control is what lets several applications
        time-share one modeled fabric: a round-robin driver advances each
        application's generator one sampling interval at a time, giving
        their dynamic-partition controllers an interleaved view of a
        shared :class:`~repro.dynamic.fabric.FabricState` (see
        :mod:`repro.dynamic.multi`).
        """
        if sample_interval < 1:
            raise SimulationError(
                f"run_sampled needs a positive sample_interval, "
                f"got {sample_interval}"
            )
        text_base = self.exe.text_base
        text_len = len(self._decoded)
        taken = self._taken
        taken[:] = [0] * text_len
        self._dyn_edges.clear()
        self._hilo[0], self._hilo[1] = self.hi, self.lo
        counts = [0] * len(self._handlers)

        pc = self.pc
        index = (pc - text_base) >> 2
        if pc & 3 or not 0 <= index < text_len:
            raise SimulationError(f"pc outside text section: 0x{pc:08x}")

        handlers = self._handlers
        sb = self._sb
        if sb is not None:
            sb.reset()
            entries = sb.entries
            materialize = sb.materialize
        halted = False
        run_started = time.monotonic()
        remaining = max_steps
        try:
            while remaining > 0:
                budget = min(sample_interval, remaining)
                remaining -= budget
                if sb is None:
                    for _ in repeat(None, budget):
                        counts[index] += 1
                        index = handlers[index]()
                else:
                    while budget > 0:
                        n, fn = entries[index]
                        if n > budget:
                            for _ in repeat(None, budget):
                                counts[index] += 1
                                index = handlers[index]()
                            budget = 0
                            break
                        if fn is None:
                            n, fn = materialize(index)
                        index = fn()
                        budget -= n
                    sb.fold_into(counts)
                sent = yield (counts, taken)
                if sent:
                    # same guard as the initial argument: a negative or
                    # non-integer override would hang the dispatch loop
                    # (zero-instruction chunks forever) or crash mid-run
                    if not isinstance(sent, int) or isinstance(sent, bool) \
                            or sent < 1:
                        raise SimulationError(
                            "sample-interval override must be a positive "
                            f"integer, got {sent!r}"
                        )
                    sample_interval = sent
        except _Halt as halt:
            halted = True
            if halt.args:
                index = halt.args[0]
            if sb is not None:
                sb.fold_into(counts)
            yield (counts, taken)
        if sb is not None:
            sb.fold_into(counts)
        self.pc = text_base + (index << 2)
        self.hi, self.lo = self._hilo[0], self._hilo[1]
        if not halted:
            raise SimulationError(
                f"exceeded max_steps={max_steps} (pc=0x{self.pc:08x})"
            )
        result = self._gather(counts)
        if obs.metrics_enabled():
            self._observe_run(result, time.monotonic() - run_started)
        return result

    def _observe_run(self, result: RunResult, wall_seconds: float) -> None:
        """Fold one finished run into the process metrics registry.

        Called only when telemetry is on, and only at run end: every
        figure is derived from counter state the dispatch loops maintain
        anyway (``bcounts`` reset per run, cumulative table stats read
        through a watermark), so the hot paths carry zero extra work.
        """
        obs.counter("engine.runs_total").inc()
        obs.counter(f"engine.runs.{self._engine}").inc()
        obs.counter("engine.instructions_total").inc(result.steps)
        obs.counter("engine.cycles_total").inc(result.cycles)
        if wall_seconds > 0:
            obs.histogram("engine.run_seconds").observe(wall_seconds)
        sb = self._sb
        if sb is None:
            return
        unit_instr, trace_instr = sb.tier_breakdown()
        obs.counter("engine.instructions_in_blocks").inc(unit_instr)
        obs.counter("engine.instructions_in_traces").inc(trace_instr)
        obs.counter("engine.instructions_stepped").inc(
            max(0, result.steps - unit_instr - trace_instr)
        )
        obs.gauge("engine.traces_installed").set_max(len(sb.traces))
        obs.gauge("engine.trace_links").set_max(sb.trace_links)
        obs.counter("engine.trace_guard_exits_total").inc(
            sum(info.guard_exits for info in sb.traces)
        )
        delta = sb.consume_stats()
        obs.counter("engine.counter_spills_total").inc(delta["spills"])
        obs.counter("engine.counter_reheats_total").inc(delta["reheats"])
        obs.counter("engine.trace_builds_total").inc(delta["trace_builds"])
        obs.counter("engine.trace_replans_total").inc(delta["replans"])
        obs.counter("engine.trace_links_made_total").inc(delta["links_made"])
        obs.counter("engine.trace_links_severed_total").inc(
            delta["links_severed"]
        )
        obs.counter("engine.codegen_units_total").inc(delta["codegen_units"])
        obs.counter("engine.codegen_lines_total").inc(delta["codegen_lines"])
        seconds = delta["codegen_seconds"]
        if seconds > 0:
            obs.histogram("engine.codegen_seconds").observe(seconds)

    def _run_threaded(
        self, index: int, counts: list[int], max_steps: int,
    ) -> tuple[int, bool]:
        """One closure call per instruction; the PR 1 dispatch loop.

        Unchunked only: sampling runs go through :meth:`run_sampled`.
        """
        handlers = self._handlers
        halted = False
        try:
            for _ in repeat(None, max_steps):
                counts[index] += 1
                index = handlers[index]()
        except _Halt:
            halted = True
        return index, halted

    def _run_superblock(
        self, index: int, counts: list[int], max_steps: int,
    ) -> tuple[int, bool]:
        """One generated-function call per unit (block, chain, or trace).

        Unchunked only (sampling runs go through :meth:`run_sampled`,
        which single-steps chunk tails through the threaded handlers so
        boundaries land on the exact instruction).  Per-unit entry
        counters are folded into *counts* at every observation point,
        never mid-spree.

        Budget-free dispatch sprees: a run of ``remaining // call_bound``
        calls cannot overshoot *max_steps* (no call executes more than
        ``call_bound`` instructions), so the hot loop carries no budget
        arithmetic at all.  While the trace tier is warming up, sprees
        are capped at ``spree_size // call_bound`` calls -- an
        *instruction* budget, so checkpoints come quickly for big-block
        and small-block programs alike:
        each one folds the counters, re-derives the executed count, and
        -- from ``trace_threshold`` sprees on -- runs an incremental
        trace build from the folded profile.  Warmup ends once the trace
        table is full or after a few build rounds; sprees then grow back
        to the full remaining budget, so steady state pays one fold per
        run just like the blocks-only tier (and exactly that when
        ``trace_threshold=0`` disables warmup outright).  Halting
        programs rarely exhaust warmup; a runaway one finishes with an
        exact single-stepped tail, so *max_steps* semantics stay
        bit-identical with the threaded loop.
        """
        sb = self._sb
        sb.reset()
        materialize = sb.materialize
        handlers = self._handlers
        halted = False
        trace_after = self._trace_threshold
        spree_cap = self._spree_size
        monitor_cap = spree_cap * _MONITOR_SPREES
        sprees = 0
        builds = 0
        disp_total = 0
        executed = 0
        exec_base = 0
        # cache-warm tables (traces replayed at construction from an
        # earlier run on the same executable) skip warmup outright
        warmup = trace_after > 0 and not sb.traces_built
        try:
            fns = sb.fns
            remaining = max_steps
            while remaining >= sb.call_bound:
                dispatches = remaining // sb.call_bound
                monitoring = not warmup and sb.monitor_enabled
                if warmup or monitoring:
                    # spree_size is an *instruction* budget.  The first
                    # spree sizes against the worst case (call_bound);
                    # later ones use the measured per-dispatch average,
                    # so checkpoints pace evenly whether dispatches run
                    # 3 instructions or 300.  Monitoring checkpoints
                    # (the re-planning watermark) run a few times
                    # coarser than warmup ones
                    budget = monitor_cap if monitoring else spree_cap
                    if disp_total:
                        cap = budget * disp_total // (executed - exec_base) \
                            or 1
                    else:
                        cap = budget // sb.call_bound or 1
                    if dispatches > cap:
                        dispatches = cap
                for _ in repeat(None, dispatches):
                    fn = fns[index]
                    if fn is None:
                        fn = materialize(index)[1]
                    index = fn()
                sb.fold_into(counts)
                sprees += 1
                disp_total += dispatches
                executed = sum(counts)
                if warmup and sprees >= trace_after:
                    builds += 1
                    if not sb.build_traces(counts) or builds >= _WARMUP_BUILDS:
                        warmup = False
                elif monitoring and sb.check_replan(counts, executed):
                    # stale traces retired: re-enter warmup so the next
                    # checkpoints profile and rebuild against the new
                    # phase.  The pacing estimator restarts too -- the
                    # retired traces' huge instructions-per-dispatch
                    # average would otherwise shrink post-replan sprees
                    # to a handful of unit calls
                    warmup = True
                    sprees = 0
                    builds = 0
                    disp_total = 0
                    exec_base = executed
                remaining = max_steps - executed
            # wind-down: traces raise call_bound to ~TRACE_CAP, which
            # would leave a long single-stepped tail; dispatch the gap
            # through the unit tier (``entries`` never holds traces)
            entries = sb.entries
            while remaining >= sb.unit_bound:
                for _ in repeat(None, remaining // sb.unit_bound):
                    entry = entries[index]
                    fn = entry[1]
                    if fn is None:
                        fn = materialize(index)[1]
                    index = fn()
                sb.fold_into(counts)
                remaining = max_steps - sum(counts)
            for _ in repeat(None, remaining):
                counts[index] += 1
                index = handlers[index]()
        except _Halt as halt:
            halted = True
            if halt.args:
                index = halt.args[0]
        sb.fold_into(counts)
        return index, halted

    def _gather(self, counts: list[int]) -> RunResult:
        """Derive the RunResult statistics from the raw counter arrays."""
        costs = self._costs
        taken = self._taken
        profile = self.profile
        text_base = self.exe.text_base
        steps = 0
        cycles = 0
        mix: Counter = Counter()
        pc_counts: dict[int, int] = {}
        text_len = len(costs)
        if profile:
            klasses = self._klasses
            for i in range(text_len):
                c = counts[i]
                if c:
                    steps += c
                    cycles += c * costs[i]
                    pc_counts[text_base + (i << 2)] = c
                    mix[klasses[i]] += c
        else:
            for i in range(text_len):
                c = counts[i]
                if c:
                    steps += c
                    cycles += c * costs[i]
        cycles += self.cpi.taken_penalty * sum(taken)

        edge_counts: dict[tuple[int, int], int] = {}
        if profile:
            for i, key in self._branch_edges.items():
                t = taken[i]
                if t:
                    edge_counts[key] = t
            for i, key in self._jump_edges.items():
                c = counts[i]
                if c:
                    edge_counts[key] = c
            edge_counts.update(self._dyn_edges)

        return RunResult(
            steps=steps,
            cycles=cycles,
            halted=True,
            exit_pc=self.pc,
            mix=mix,
            pc_counts=pc_counts,
            edge_counts=edge_counts,
        )


def run_executable(
    exe: Executable,
    profile: bool = False,
    max_steps: int = 100_000_000,
    cpi: CpiModel | None = None,
    engine: str = "superblock",
    trace_threshold: int = 1,
    spree_size: int = 32768,
    spill_after: int = 8,
    replan_threshold: float = 0.25,
    trace_persist: bool | None = None,
) -> tuple[Cpu, RunResult]:
    """Convenience: build a CPU for *exe*, run to halt, return (cpu, result)."""
    cpu = Cpu(
        exe, cpi=cpi, profile=profile, engine=engine,
        trace_threshold=trace_threshold, spree_size=spree_size,
        spill_after=spill_after, replan_threshold=replan_threshold,
        trace_persist=trace_persist,
    )
    result = cpu.run(max_steps=max_steps)
    return cpu, result
