"""Code generation for superblock units: blocks, j-chains, and traces.

Every generated function mirrors the threaded executor closures exactly
-- same masking, same "writes to $zero are dropped but their memory
reads still happen" rule, same link-before-read ``jalr`` semantics --
because three copies of the ISA semantics coexist (reference
interpreter, threaded closures, these templates) and the differential
suite requires bit-identical statistics from all of them.

Key pieces:

* **Block-local register JIT** (:class:`_BlockEnv`).  Within one unit,
  registers touched more than once are shadowed by Python locals
  (``x9`` for ``$9``) with *deferred write-back*: loads of ``R[n]`` are
  emitted lazily at first read, stores are batched and flushed only at
  the points where the architectural file is observable -- before any
  statement that can raise (memory accesses, the ``jr``/``jalr`` target
  check, ``break``/``syscall``) and at unit exit.  Dead intermediate
  writes therefore never touch ``R`` at all.  On top of that the
  generator propagates literals: reads of ``$zero`` fold to ``0``,
  ``lui``/``ori``/``addiu`` constants fold into the consuming
  expressions, and fully-constant ALU results are computed at
  generation time.  The folds rely on the canonical-u32 invariant:
  every value stored in ``R`` is already masked to 32 bits, so
  ``x & 0xFFFFFFFF`` is the identity on register reads.
* **Multi-segment units** (:meth:`Codegen.emit_unit`).  A unit is a
  list of ``(start, length)`` block segments emitted back to back; a
  non-final segment must end in an unconditional ``j``/``jal`` whose
  static target starts the next segment (j-chain fusion), so the fused
  jump costs a link write at most -- no dispatch, no flush.  The
  register JIT spans the whole chain.
* **Side-exit support for traces** (:meth:`Codegen.branch_condition`,
  :meth:`_BlockEnv.peek_flush`).  Traces guard mid-path branches and
  must leave the register file architecturally exact on the exit path
  *without* disturbing the deferred-write state of the hot
  continuation; ``peek_flush`` emits the write-backs but keeps the
  dirty set.

Generated code uses short names bound once per ``Cpu``: ``R`` registers,
``T`` per-site branch-taken counters, ``BC`` per-unit entry counters,
``HL`` hi/lo, ``DE`` dynamic-edge dict, ``r8``..``w32`` memory
accessors, ``Halt``/``Err`` the exception types.
"""

from __future__ import annotations

from collections import Counter

from repro.errors import SimulationError
from repro.sim.superblock.leaders import BRANCHES, CONTROL_TRANSFERS

__all__ = ["FACTORY", "Codegen", "_BlockEnv", "_MAY_FAULT", "_read_regs",
           "_written_reg"]

#: the shared factory header every generated module starts with; binds
#: the per-Cpu namespace (``SuperblockTable._ns``) once per compile.
#: ``LK`` is the cross-trace link table: guard exits indirect through it
#: so a hot side exit can call the trace anchored at its target directly
#: instead of bouncing through the dispatch loop
FACTORY = ("def _factory(R, T, BC, HL, DE, r8, r16, r32, "
           "w8, w16, w32, Halt, Err, LK):")

#: memory accessors can raise MemoryFault, so the register file must be
#: architecturally exact before each of these executes
_MAY_FAULT = frozenset(("lw", "lb", "lbu", "lh", "lhu", "sw", "sb", "sh"))

_MASK = 0xFFFF_FFFF
_M = "4294967295"  # 0xFFFF_FFFF as a source literal


def _s32(value: int) -> int:
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


# -- register use analysis (for block-local caching) ------------------------

_READS_RS = frozenset((
    "addiu", "addi", "slti", "sltiu", "andi", "ori", "xori",
    "lw", "lb", "lbu", "lh", "lhu", "sw", "sb", "sh",
    "addu", "add", "subu", "sub", "and", "or", "xor", "nor", "slt", "sltu",
    "sllv", "srlv", "srav", "mult", "multu", "div", "divu", "mthi", "mtlo",
    "beq", "bne", "blez", "bgtz", "bltz", "bgez", "jr", "jalr",
))
_READS_RT = frozenset((
    "sw", "sb", "sh",
    "addu", "add", "subu", "sub", "and", "or", "xor", "nor", "slt", "sltu",
    "sll", "srl", "sra", "sllv", "srlv", "srav",
    "mult", "multu", "div", "divu", "beq", "bne",
))
_WRITES_RT = frozenset((
    "addiu", "addi", "slti", "sltiu", "andi", "ori", "xori", "lui",
    "lw", "lb", "lbu", "lh", "lhu",
))
_WRITES_RD = frozenset((
    "addu", "add", "subu", "sub", "and", "or", "xor", "nor", "slt", "sltu",
    "sll", "srl", "sra", "sllv", "srlv", "srav", "mfhi", "mflo", "jalr",
))


def _read_regs(instr) -> list[int]:
    """Registers *instr* reads, ``$zero`` excluded (it folds to literal 0)."""
    m = instr.mnemonic
    regs = []
    if m in _READS_RS and instr.rs:
        regs.append(instr.rs)
    if m in _READS_RT and instr.rt:
        regs.append(instr.rt)
    return regs


def _written_reg(instr) -> int:
    """Register *instr* writes, or 0 for none (writes to $zero are dropped)."""
    m = instr.mnemonic
    if m in _WRITES_RT:
        return instr.rt
    if m in _WRITES_RD:
        return instr.rd
    if m == "jal":
        return 31
    return 0


class _BlockEnv:
    """Register-file state during code generation of one unit.

    Tracks, per architectural register: whether it is shadowed by a unit
    local, whether its value is a known literal, and whether ``R`` is
    stale (a deferred write-back is pending).  ``read``/``write`` return
    and consume source fragments; ``flush`` emits the deferred stores.
    """

    def __init__(self, cached: set[int]) -> None:
        self.cached = cached
        self.known: dict[int, int] = {}  # reg -> literal value when known
        self.loaded: set[int] = set()    # cached regs live as x{reg} locals
        self.dirty: set[int] = set()     # cached regs with R[] write-back pending
        self.pending: list[str] = []     # lazy loads owed before the next stmt

    def read(self, reg: int) -> tuple[str, int | None]:
        """(source expression, literal value or None) for *reg*'s value."""
        if reg == 0:
            return "0", 0
        value = self.known.get(reg)
        if value is not None:
            return str(value), value
        if reg in self.cached:
            if reg not in self.loaded:
                self.pending.append(f"x{reg} = R[{reg}]")
                self.loaded.add(reg)
            return f"x{reg}", None
        return f"R[{reg}]", None

    def write(self, reg: int, expr: str | None, value: int | None = None) -> list[str]:
        """Statements realizing a write of *expr* (or literal *value*)."""
        if reg in self.cached:
            self.dirty.add(reg)
            if value is not None:
                self.known[reg] = value
                self.loaded.discard(reg)  # the literal supersedes the local
                return []
            self.known.pop(reg, None)
            self.loaded.add(reg)
            return [f"x{reg} = {expr}"]
        self.known.pop(reg, None)
        if value is not None:
            self.known[reg] = value
            return [f"R[{reg}] = {value}"]
        return [f"R[{reg}] = {expr}"]

    def take_pending(self) -> list[str]:
        lines = self.pending
        self.pending = []
        return lines

    def flush(self) -> list[str]:
        """Deferred write-backs, making ``R`` architecturally exact."""
        lines = self.peek_flush()
        self.dirty.clear()
        return lines

    def peek_flush(self) -> list[str]:
        """Like :meth:`flush` but keeps the dirty set.

        Used on trace side exits: the exit path must write ``R`` back
        before returning to the dispatch loop, while the hot
        continuation -- a *different* runtime path through the same
        generated text -- still owes the same write-backs later.
        """
        lines = []
        for reg in sorted(self.dirty):
            value = self.known.get(reg)
            source = str(value) if value is not None else f"x{reg}"
            lines.append(f"R[{reg}] = {source}")
        return lines


class Codegen:
    """Stateless-per-unit emitter shared by blocks, chains, and traces."""

    def __init__(self, decoded, text_base: int, text_len: int,
                 profile: bool, escape_slots: dict[int, int]) -> None:
        self.decoded = decoded
        self.text_base = text_base
        self.text_len = text_len
        self.profile = profile
        self.escape_slots = escape_slots
        #: emission volume, read by the telemetry layer at run end
        self.units_emitted = 0
        self.lines_emitted = 0

    # -- whole units ---------------------------------------------------------

    def cache_env(self, segments) -> _BlockEnv:
        """A :class:`_BlockEnv` caching registers the unit touches twice.

        Single-touch registers go straight to ``R`` (same cost); the
        touch count spans *all* segments, so chain fusion widens the
        caching window across the fused blocks.
        """
        decoded = self.decoded
        touches: Counter = Counter()
        for start, length in segments:
            for instr in decoded[start:start + length]:
                for reg in _read_regs(instr):
                    touches[reg] += 1
                target = _written_reg(instr)
                if target:
                    touches[target] += 1
        return _BlockEnv({reg for reg, n in touches.items() if n >= 2})

    def emit_unit(self, name: str, segments, bid: int, indent: str) -> list[str]:
        """One generated function covering *segments* back to back.

        A single-element segment list is a plain superblock; multiple
        segments form a j-chain whose non-final segments end in an
        unconditional ``j``/``jal`` to the next segment's start (the
        jump is fused away, ``jal`` keeps its link write).  One ``BC``
        bump covers the whole unit; the fold expands it over every
        member instruction.
        """
        decoded = self.decoded
        env = self.cache_env(segments)
        lines = [f"{indent}def {name}():", f"{indent}    BC[{bid}] += 1"]
        body = indent + "    "
        last_seg = len(segments) - 1
        for seg_no, (start, length) in enumerate(segments):
            for offset in range(length):
                index = start + offset
                instr = decoded[index]
                m = instr.mnemonic
                if m in CONTROL_TRANSFERS:
                    if seg_no == last_seg:
                        stmts = self.terminator(instr, index, env)
                    else:
                        # fused unconditional jump: no dispatch, no flush;
                        # jal still owes its (deferrable) link write
                        stmts = []
                        if m == "jal":
                            pc = self.text_base + (index << 2)
                            stmts = env.write(31, None, pc + 4)
                else:
                    # flush *before* emitting a faulting instruction, so
                    # the write-backs cover only the instructions already
                    # executed (this instruction's own write must not be
                    # flushed yet)
                    flush = env.flush() if m in _MAY_FAULT else []
                    emitted = self.straightline(instr, env)
                    stmts = env.take_pending() + flush + emitted
                lines.extend(body + stmt for stmt in stmts)
        final_start, final_len = segments[-1]
        if decoded[final_start + final_len - 1].mnemonic not in CONTROL_TRANSFERS:
            lines.extend(body + stmt for stmt in env.flush())
            lines.append(f"{body}return {final_start + final_len}")
        self.units_emitted += 1
        self.lines_emitted += len(lines)
        return lines

    # -- pieces --------------------------------------------------------------

    def addr(self, env: _BlockEnv, rs: int, imm: int) -> str:
        """Effective-address expression ``(R[rs] + imm) & M``, folded."""
        base, value = env.read(rs)
        if value is not None:
            return str((value + imm) & _MASK)
        if imm == 0:
            return base
        return f"({base} + {imm}) & {_M}"

    def branch_condition(self, instr, env: _BlockEnv) -> tuple[list[str], str, str]:
        """(prelude lines, taken condition, not-taken condition) for a branch.

        Constant operands fold to literal ``True``/``False`` conditions;
        the ``blez``/``bgtz`` forms share a ``_v`` prelude because both
        polarities need the value twice.
        """
        m = instr.mnemonic
        a, av = env.read(instr.rs)
        if m == "beq" or m == "bne":
            b, bv = env.read(instr.rt)
            if av is not None and bv is not None:
                taken = av == bv if m == "beq" else av != bv
                return [], str(taken), str(not taken)
            eq, ne = f"{a} == {b}", f"{a} != {b}"
            return ([], eq, ne) if m == "beq" else ([], ne, eq)
        if av is not None:
            signed = _s32(av)
            taken = {
                "blez": signed <= 0, "bgtz": signed > 0,
                "bltz": signed < 0, "bgez": signed >= 0,
            }[m]
            return [], str(taken), str(not taken)
        if m == "blez":
            return ([f"_v = {a}"], "_v == 0 or _v & 0x80000000",
                    "_v != 0 and not _v & 0x80000000")
        if m == "bgtz":
            return ([f"_v = {a}"], "_v != 0 and not _v & 0x80000000",
                    "_v == 0 or _v & 0x80000000")
        if m == "bltz":
            return [], f"{a} & 0x80000000", f"not {a} & 0x80000000"
        # bgez
        return [], f"not {a} & 0x80000000", f"{a} & 0x80000000"

    def straightline(self, instr, env: _BlockEnv) -> list[str]:
        """Statements for one non-control-transfer instruction.

        Returns relative-indented source lines; lazy register loads
        accumulate in ``env.pending``.
        """
        m = instr.mnemonic
        rs, rt, rd = instr.rs, instr.rt, instr.rd
        shamt, imm = instr.shamt, instr.imm

        if m == "addiu" or m == "addi":
            if not rt:
                return []
            a, av = env.read(rs)
            if av is not None:
                return env.write(rt, None, (av + imm) & _MASK)
            if imm == 0:
                return env.write(rt, a)
            return env.write(rt, f"({a} + {imm}) & {_M}")
        if m == "lw":
            address = self.addr(env, rs, imm)
            if rt:
                return env.write(rt, f"r32({address})")
            return [f"r32({address})"]
        if m == "sw":
            address = self.addr(env, rs, imm)
            return [f"w32({address}, {env.read(rt)[0]})"]
        if m in ("addu", "add", "subu", "sub", "and", "or", "xor", "nor",
                 "slt", "sltu"):
            if not rd:
                return []
            a, av = env.read(rs)
            b, bv = env.read(rt)
            both = av is not None and bv is not None
            if m == "addu" or m == "add":
                if both:
                    return env.write(rd, None, (av + bv) & _MASK)
                if av == 0:
                    return env.write(rd, b, bv)
                if bv == 0:
                    return env.write(rd, a, av)
                return env.write(rd, f"({a} + {b}) & {_M}")
            if m == "subu" or m == "sub":
                if both:
                    return env.write(rd, None, (av - bv) & _MASK)
                if bv == 0:
                    return env.write(rd, a, av)
                return env.write(rd, f"({a} - {b}) & {_M}")
            if m == "and":
                if both:
                    return env.write(rd, None, av & bv)
                if av == 0 or bv == 0:
                    return env.write(rd, None, 0)
                return env.write(rd, f"{a} & {b}")
            if m == "or":
                if both:
                    return env.write(rd, None, av | bv)
                if av == 0:
                    return env.write(rd, b, bv)
                if bv == 0:
                    return env.write(rd, a, av)
                return env.write(rd, f"{a} | {b}")
            if m == "xor":
                if both:
                    return env.write(rd, None, av ^ bv)
                if av == 0:
                    return env.write(rd, b, bv)
                if bv == 0:
                    return env.write(rd, a, av)
                return env.write(rd, f"{a} ^ {b}")
            if m == "nor":
                if both:
                    return env.write(rd, None, ~(av | bv) & _MASK)
                if av == 0:
                    return env.write(rd, f"~{b} & {_M}")
                if bv == 0:
                    return env.write(rd, f"~{a} & {_M}")
                return env.write(rd, f"~({a} | {b}) & {_M}")
            if m == "slt":
                if both:
                    return env.write(rd, None, int(_s32(av) < _s32(bv)))
                if bv == 0:
                    # signed(a) < 0  <=>  sign bit set
                    return env.write(rd, f"1 if {a} & 0x80000000 else 0")
                if av == 0:
                    # 0 < signed(b)  <=>  b in (0, 2^31)
                    return env.write(rd, f"1 if 0 < {b} < 0x80000000 else 0")
                if bv is not None:
                    # signed compare against a constant: one statement
                    # (register reads are side-effect-free, so the
                    # duplicated operand is safe)
                    return env.write(rd, f"1 if ({a} - 0x100000000 if "
                                         f"{a} & 0x80000000 else {a}) < {_s32(bv)} else 0")
                if av is not None:
                    return env.write(rd, f"1 if {_s32(av)} < ({b} - 0x100000000 if "
                                         f"{b} & 0x80000000 else {b}) else 0")
                return [
                    f"_a = {a}",
                    "if _a & 0x80000000:",
                    "    _a -= 0x100000000",
                    f"_b = {b}",
                    "if _b & 0x80000000:",
                    "    _b -= 0x100000000",
                ] + env.write(rd, "1 if _a < _b else 0")
            # sltu
            if both:
                return env.write(rd, None, int(av < bv))
            if bv == 0:
                return env.write(rd, None, 0)
            if av == 0:
                return env.write(rd, f"1 if {b} else 0")
            return env.write(rd, f"1 if {a} < {b} else 0")
        if m in ("sll", "srl", "sra", "sllv", "srlv", "srav"):
            if not rd:
                return []  # includes the canonical nop
            b, bv = env.read(rt)
            if m in ("sll", "srl", "sra"):
                if shamt == 0:
                    return env.write(rd, b, bv)
                if m == "sll":
                    if bv is not None:
                        return env.write(rd, None, (bv << shamt) & _MASK)
                    return env.write(rd, f"({b} << {shamt}) & {_M}")
                if m == "srl":
                    if bv is not None:
                        return env.write(rd, None, bv >> shamt)
                    return env.write(rd, f"{b} >> {shamt}")
                # sra
                if bv is not None:
                    return env.write(rd, None, (_s32(bv) >> shamt) & _MASK)
                return [
                    f"_v = {b}",
                    "if _v & 0x80000000:",
                    "    _v -= 0x100000000",
                ] + env.write(rd, f"(_v >> {shamt}) & {_M}")
            a, av = env.read(rs)
            if m == "sllv":
                if av is not None and bv is not None:
                    return env.write(rd, None, (bv << (av & 31)) & _MASK)
                return env.write(rd, f"({b} << ({a} & 31)) & {_M}")
            if m == "srlv":
                if av is not None and bv is not None:
                    return env.write(rd, None, bv >> (av & 31))
                return env.write(rd, f"{b} >> ({a} & 31)")
            # srav
            if av is not None and bv is not None:
                return env.write(rd, None, (_s32(bv) >> (av & 31)) & _MASK)
            return [
                f"_v = {b}",
                "if _v & 0x80000000:",
                "    _v -= 0x100000000",
            ] + env.write(rd, f"(_v >> ({a} & 31)) & {_M}")
        if m in ("slti", "sltiu", "andi", "ori", "xori", "lui"):
            if not rt:
                return []
            if m == "lui":
                return env.write(rt, None, (imm << 16) & _MASK)
            a, av = env.read(rs)
            if m == "slti":
                if av is not None:
                    return env.write(rt, None, int(_s32(av) < imm))
                return env.write(rt, f"1 if ({a} - 0x100000000 if "
                                     f"{a} & 0x80000000 else {a}) < {imm} else 0")
            if m == "sltiu":
                if av is not None:
                    return env.write(rt, None, int(av < (imm & _MASK)))
                return env.write(rt, f"1 if {a} < {imm & _MASK} else 0")
            if m == "andi":
                if av is not None:
                    return env.write(rt, None, av & imm)
                return env.write(rt, f"{a} & {imm}")
            if m == "ori":
                if av is not None:
                    return env.write(rt, None, av | imm)
                return env.write(rt, f"{a} | {imm}")
            # xori
            if av is not None:
                return env.write(rt, None, av ^ imm)
            return env.write(rt, f"{a} ^ {imm}")
        if m in ("lb", "lbu", "lh", "lhu"):
            reader = "r8" if m in ("lb", "lbu") else "r16"
            address = self.addr(env, rs, imm)
            if not rt:
                return [f"{reader}({address})"]
            if m == "lb":
                return [f"_v = r8({address})"] + env.write(
                    rt, f"(_v - 0x100 if _v & 0x80 else _v) & {_M}"
                )
            if m == "lbu":
                return env.write(rt, f"r8({address})")
            if m == "lh":
                return [f"_v = r16({address})"] + env.write(
                    rt, f"(_v - 0x10000 if _v & 0x8000 else _v) & {_M}"
                )
            return env.write(rt, f"r16({address})")  # lhu
        if m == "sb":
            return [f"w8({self.addr(env, rs, imm)}, {env.read(rt)[0]})"]
        if m == "sh":
            return [f"w16({self.addr(env, rs, imm)}, {env.read(rt)[0]})"]
        if m == "mult":
            return [
                f"_a = {env.read(rs)[0]}",
                "if _a & 0x80000000:",
                "    _a -= 0x100000000",
                f"_b = {env.read(rt)[0]}",
                "if _b & 0x80000000:",
                "    _b -= 0x100000000",
                "_p = (_a * _b) & 0xFFFFFFFFFFFFFFFF",
                f"HL[0] = (_p >> 32) & {_M}",
                f"HL[1] = _p & {_M}",
            ]
        if m == "multu":
            return [
                f"_p = {env.read(rs)[0]} * {env.read(rt)[0]}",
                f"HL[0] = (_p >> 32) & {_M}",
                f"HL[1] = _p & {_M}",
            ]
        if m == "div":
            return [
                f"_a = {env.read(rs)[0]}",
                "if _a & 0x80000000:",
                "    _a -= 0x100000000",
                f"_b = {env.read(rt)[0]}",
                "if _b & 0x80000000:",
                "    _b -= 0x100000000",
                "if _b == 0:",
                # MIPS leaves HI/LO undefined; match the other engines
                f"    HL[0] = _a & {_M}",
                f"    HL[1] = {_M}",
                "else:",
                "    _q = int(_a / _b)",  # C-style truncation toward zero
                f"    HL[0] = (_a - _q * _b) & {_M}",
                f"    HL[1] = _q & {_M}",
            ]
        if m == "divu":
            return [
                f"_a = {env.read(rs)[0]}",
                f"_b = {env.read(rt)[0]}",
                "if _b == 0:",
                "    HL[0] = _a",
                f"    HL[1] = {_M}",
                "else:",
                "    HL[0] = _a % _b",
                "    HL[1] = _a // _b",
            ]
        if m == "mfhi":
            return env.write(rd, "HL[0]") if rd else []
        if m == "mflo":
            return env.write(rd, "HL[1]") if rd else []
        if m == "mthi":
            return [f"HL[0] = {env.read(rs)[0]}"]
        if m == "mtlo":
            return [f"HL[1] = {env.read(rs)[0]}"]
        raise SimulationError(f"unimplemented mnemonic {m}")  # pragma: no cover

    def terminator(self, instr, idx: int, env: _BlockEnv) -> list[str]:
        """Statements for a control transfer; every path ends in return/raise.

        Terminators flush the deferred register write-backs themselves:
        branches and jumps before their condition/return, ``jr``/``jalr``
        after the link write but before the target check (whose failure
        aborts the run exactly like the threaded engine, registers fully
        written), ``break``/``syscall`` before raising.
        """
        m = instr.mnemonic
        pc = self.text_base + (idx << 2)
        nxt = idx + 1

        if m in BRANCHES:
            t_pc = pc + 4 + (instr.imm << 2)
            t_idx = (t_pc - self.text_base) >> 2
            if not 0 <= t_idx < self.text_len:
                # same escape slot the threaded table uses: executing it
                # raises, and if the step budget runs out first the caller
                # sees the same "exceeded max_steps" the threaded loop does
                t_idx = self.escape_slots[t_pc]
            prelude, taken_cond, _ = self.branch_condition(instr, env)
            return env.take_pending() + env.flush() + prelude + [
                f"if {taken_cond}:",
                f"    T[{idx}] += 1",
                f"    return {t_idx}",
                f"return {nxt}",
            ]

        if m == "j" or m == "jal":
            t_pc = ((pc + 4) & 0xF000_0000) | (instr.target << 2)
            t_idx = (t_pc - self.text_base) >> 2
            if not 0 <= t_idx < self.text_len:
                t_idx = self.escape_slots[t_pc]
            lines = []
            if m == "jal":
                lines.extend(env.write(31, None, pc + 4))
            return lines + env.flush() + [f"return {t_idx}"]

        if m == "jr" or m == "jalr":
            lines = []
            if m == "jalr" and instr.rd:
                # link is written before the target register is read, so
                # `jalr $t0, $t0` jumps to the link address -- exactly what
                # the threaded closure and the reference interpreter do
                lines.extend(env.write(instr.rd, None, pc + 4))
            target, _ = env.read(instr.rs)
            lines = env.take_pending() + lines + [f"_t = {target}"] + env.flush() + [
                f"_i = (_t - {self.text_base}) >> 2",
                f"if _t & 3 or not 0 <= _i < {self.text_len}:",
                '    raise Err("pc outside text section: 0x%08x" % _t)',
            ]
            if self.profile:
                lines += [
                    f"_k = ({pc}, _t)",
                    "DE[_k] = DE.get(_k, 0) + 1",
                ]
            lines.append("return _i")
            return lines

        if m == "break":
            return env.flush() + [f"raise Halt({idx})"]
        if m == "syscall":
            message = f"syscall executed at 0x{pc:08x}; benchmarks are I/O-free"
            return env.flush() + [f"raise Err({message!r})"]
        raise SimulationError(f"unimplemented mnemonic {m}")  # pragma: no cover
