"""The trace tier: hot taken-branch paths compiled into one function each.

This is the simulator-side twin of the paper's core observation (and of
Lysecky & Vahid's warp processing): a handful of hot paths dominate
execution, and those paths are worth compiling into a faster form.  The
dispatch loop runs a few sprees with per-unit counters live, then calls
:func:`install_traces` once; planning reads the folded per-instruction
``counts``/``taken`` profile -- the very arrays the repo's partitioning
studies use -- and chains each hot anchor through its biased branch
directions into a **trace**: a straight-line generated function crossing
many basic blocks, with a *guard* at every in-trace branch.

Guards keep the tier transparent:

* the hot direction falls through into the next block's code (no
  dispatch, no register write-back);
* the cold direction bumps the guard's exit counter, write-backs the
  cached registers (:meth:`_BlockEnv.peek_flush` -- the hot path's
  deferred-write state must survive), and returns the exit index to the
  dispatch loop, which resumes normal block dispatch.

Exactness: every distinct runtime path through a trace ends in exactly
one ``BC`` bump -- a guard-exit counter whose members are the executed
block prefix, or the full-path counter at the natural end -- so folding
reconstructs per-instruction counts exactly.  Hot-*taken* guards cannot
bump ``T`` inline on the hot path (that would cost a statement per
guard per call), so each counter carries *tsites*: the branch sites the
corresponding path passed through taking them, credited ``delta`` at
fold time.  A path that closes back on its anchor becomes a **loop
trace**: the body runs up to ``cycles`` iterations inside one call
(bounded so the dispatch loop's budget arithmetic stays exact), with
the back edge bumping a per-iteration counter, so a hot loop costs one
Python call per ~:data:`TRACE_CAP` instructions.

Loop traces carry registers in Python locals *across* iterations
(:class:`_LoopEnv`): every touched register is loaded once at trace
entry, every write lands in a local, and the architectural file is
written back only at observation points -- guard exits, the
conditional-back exit, and loop exhaustion -- via a uniform
``R[n] = xn`` flush of the statically-written set.  The back-edge
``continue`` writes nothing back at all, which is what makes a hot
loop iteration a handful of local-variable statements.  The one
semantic consequence: a run aborted by a ``MemoryFault`` *inside* a
loop trace leaves the register file at the last write-back rather
than at the faulting instruction.  Faults are terminal (the engines
already diverge on partial-block counts there), and no observable
statistic depends on post-fault register state.

Traces install into ``table.fns`` only.  The sampled path
(``Cpu.run_sampled``) dispatches via ``table.entries`` and therefore
never executes a trace: chunk boundaries keep landing on exact
instruction counts without traces needing any budget logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.superblock.codegen import (
    FACTORY as _FACTORY,
    _MAY_FAULT,
    _read_regs,
    _written_reg,
)
from repro.sim.superblock.leaders import BRANCHES, CONTROL_TRANSFERS

__all__ = ["TraceInfo", "install_traces", "plan_traces",
           "HOT_ANCHOR", "HOT_EDGE", "BIAS",
           "MAX_TRACES", "MAX_SEGMENTS", "PATH_CAP", "TRACE_CAP"]

#: minimum *instructions executed from* a leader (entry count x block
#: length) for it to anchor a trace; weighting by length lets a
#: 300-instruction loop body qualify after a few dozen iterations while
#: a 3-instruction block needs to be genuinely hot.  The effective
#: floor also scales with executed instructions (see
#: :func:`plan_traces`) so a long run only traces paths that matter
HOT_ANCHOR = 4096
#: executed >> HOT_SHIFT is the dynamic part of the anchor floor
#: (~0.8% of the instructions run so far)
HOT_SHIFT = 7
#: a non-loop trace below this many instructions saves too few
#: dispatches to be worth its compile time
MIN_STRAIGHT = 8
#: minimum execution count for a branch to be considered for extension
HOT_EDGE = 64
#: minimum taken (or not-taken) ratio for a branch direction to be "hot"
BIAS = 0.85
#: at most this many traces per program (hottest anchors win)
MAX_TRACES = 16
#: at most this many blocks per trace
MAX_SEGMENTS = 32
#: at most this many instructions on a trace path (single pass)
PATH_CAP = 512
#: a loop trace runs ~this many instructions per call (cycles * body)
TRACE_CAP = 4096


@dataclass
class _Guard:
    """An in-trace branch: hot direction continues, cold direction exits."""
    idx: int          # branch instruction index
    hot_taken: bool   # hot direction is the taken edge
    exit_index: int   # dispatch index the cold direction returns
    seg_no: int       # segments[:seg_no+1] executed when this guard exits
    bid: int = -1     # exit counter, assigned at emission
    slot: int = -1    # cross-trace link slot (LK index), assigned at emission


@dataclass
class _TracePlan:
    anchor: int
    segments: list        # [(start, length), ...] in path order
    guards: list          # [_Guard, ...] at non-final segment ends
    loop: bool            # path closes back on the anchor
    back: _Guard | None   # conditional back edge (None: unconditional)
    total: int            # instructions on one full pass


@dataclass(frozen=True)
class TraceInfo:
    """Introspection handle for one installed trace (``cpu.traces``)."""
    anchor: int                  # entry index (dispatch slot it occupies)
    blocks: tuple                # (start, length) segments on the hot path
    loop: bool                   # loop trace (body repeats inside one call)
    guards: int                  # number of guarded side exits
    cap: int                     # max instructions one call may execute
    _table: object = field(repr=False, compare=False)
    _bids: tuple = field(repr=False, compare=False)
    _call_bids: tuple = field(repr=False, compare=False)
    #: (LK slot, exit index) per guarded exit -- the link sites
    #: :meth:`SuperblockTable._relink` patches when the exit's target is
    #: another installed trace's anchor
    _sites: tuple = field(repr=False, compare=False, default=())

    @property
    def links(self) -> int:
        """Exits currently linked straight into another trace."""
        links = self._table._links
        return sum(1 for slot, _ in self._sites if links[slot] is not None)

    @property
    def calls(self) -> int:
        """Times the trace function ran (every runtime path counts once)."""
        bcounts = self._table.bcounts
        return sum(bcounts[bid] for bid in self._call_bids)

    @property
    def instructions(self) -> int:
        """Instructions executed inside the trace (exact, from the fold
        counters -- partial guard-exit passes included)."""
        bcounts = self._table.bcounts
        members = self._table.members
        return sum(
            bcounts[bid] * sum(length for _, length in members[bid])
            for bid in self._bids
        )

    @property
    def guard_exits(self) -> int:
        """Times a guarded side exit left the trace early.

        The first ``guards`` call bids are the guard-exit counters, in
        guard order (see ``_emit_one``); the remainder count full passes
        (and, for loops, the conditional-back exit).
        """
        bcounts = self._table.bcounts
        return sum(bcounts[bid] for bid in self._call_bids[:self.guards])


# -- planning ----------------------------------------------------------------


def plan_traces(table, counts, taken) -> list[_TracePlan]:
    """Trace plans from the folded profile, hottest anchors first.

    Builds are incremental: the dispatch loop re-plans at every warmup
    checkpoint, so the budget is what is left of :data:`MAX_TRACES` and
    blocks already inside an installed trace are not re-anchored.  A
    loop that only turns hot after an init phase (its early profile is
    cold) still gets its trace a few sprees later.
    """
    budget = MAX_TRACES - len(table.traces)
    if budget <= 0:
        return []
    # after a replan the table carries profile snapshots: plan from the
    # deltas since the replan, so the rebuild sees the *new* phase's hot
    # set instead of a history dominated by the retired one.  (The live
    # arrays are never modified -- exactness folds stay untouched.)
    base_counts = table._base_counts
    if base_counts is not None:
        counts = [c - b for c, b in zip(counts, base_counts)]
        taken = [t - b for t, b in zip(taken, table._base_taken)]
        # the replan that armed these baselines is itself evidence of a
        # hot untraced phase (the monitor only fires on sustained
        # execution outside traces), so the rebuild plans more eagerly:
        # the delta profile covers a few warmup windows at most, and the
        # full static floor would demand phase lengths no mid-run shift
        # can show in that time
        floor = HOT_ANCHOR >> 2
    else:
        floor = HOT_ANCHOR
    hot_min = max(floor, sum(counts) >> HOT_SHIFT)
    suffix = table.suffix_len
    # anchor hotness is weighted by *dispatch entries* (per-unit fold
    # counters), not raw instruction counts: a leader that executes hot
    # but only ever mid-chain is never a dispatch target, so a trace
    # anchored there would never be called
    bcounts = table.bcounts
    base_bcounts = table._base_bcounts
    entered: dict[int, int] = {}
    for bid, home in table._home.items():
        c = bcounts[bid]
        if base_bcounts is not None and bid < len(base_bcounts):
            c -= base_bcounts[bid]
        if c > 0:
            entered[home] = entered.get(home, 0) + c
    hot = sorted(
        ((entered.get(leader, 0) * suffix[leader], leader)
         for leader in table.leaders
         if entered.get(leader, 0) * suffix[leader] >= hot_min
         and leader not in table._traced),
        reverse=True,
    )
    plans: list[_TracePlan] = []
    covered: set[int] = {
        start for info in table.traces for start, _ in info.blocks
    }
    for _, anchor in hot:
        if len(plans) >= budget:
            break
        if anchor in covered:
            continue
        plan = _grow(table, counts, taken, anchor)
        if plan is not None:
            plans.append(plan)
            covered.update(start for start, _ in plan.segments)
    return plans


def _grow(table, counts, taken, anchor) -> _TracePlan | None:
    """Extend *anchor* through hot biased edges into one trace plan.

    Stops at cold or unbiased branches, register-indirect jumps,
    ``break``/``syscall``, out-of-text successors, path revisits, and
    the size caps; a path that returns to *anchor* closes into a loop.
    Single-block non-loop paths are not worth a trace.
    """
    decoded = table._decoded
    suffix = table.suffix_len
    text_len = table._text_len
    segments: list[tuple[int, int]] = []
    guards: list[_Guard] = []
    seen: set[int] = set()
    total = 0
    current = anchor
    loop = False
    back: _Guard | None = None
    while True:
        length = suffix[current]
        segments.append((current, length))
        seen.add(current)
        total += length
        idx = current + length - 1
        instr = decoded[idx]
        m = instr.mnemonic
        guard: _Guard | None = None
        if m in BRANCHES:
            execs = counts[idx]
            if execs < HOT_EDGE:
                break
            bias = taken[idx] / execs
            raw_t = idx + 1 + instr.imm
            if bias >= BIAS:
                if not 0 <= raw_t < text_len:
                    break  # hot direction escapes the text section
                succ = raw_t
                guard = _Guard(idx, True, idx + 1, len(segments) - 1)
            elif bias <= 1.0 - BIAS:
                succ = idx + 1
                if 0 <= raw_t < text_len:
                    exit_index = raw_t
                else:
                    t_pc = table._text_base + (raw_t << 2)
                    exit_index = table._cg.escape_slots[t_pc]
                guard = _Guard(idx, False, exit_index, len(segments) - 1)
            else:
                break  # unbiased: keep the natural two-way terminator
        elif m == "j" or m == "jal":
            pc = table._text_base + (idx << 2)
            t_pc = ((pc + 4) & 0xF000_0000) | (instr.target << 2)
            succ = (t_pc - table._text_base) >> 2
            if not 0 <= succ < text_len:
                break
        elif m in ("jr", "jalr", "break", "syscall"):
            break  # terminal: dynamic target or stop
        else:
            succ = idx + 1  # plain fall-through into the next leader
            if succ >= text_len:
                break
        if succ == anchor:
            loop = True
            back = guard
            break
        if (succ in seen or len(segments) >= MAX_SEGMENTS
                or total + suffix[succ] > PATH_CAP):
            break  # guard (if any) discarded: natural terminator stays
        if guard is not None:
            guards.append(guard)
        current = succ
    if loop:
        return _TracePlan(anchor, segments, guards, True, back, total)
    if len(segments) >= 2 and total >= MIN_STRAIGHT:
        return _TracePlan(anchor, segments, guards, False, None, total)
    return None


# -- emission ----------------------------------------------------------------


class _LoopEnv:
    """Register environment for loop traces: locals live across iterations.

    Drop-in for :class:`~repro.sim.superblock.codegen._BlockEnv` at the
    emission interfaces, with a different write-back discipline.  Every
    register the body touches is loaded into a local once at trace entry
    (:meth:`entry_loads`); writes always assign the local, so the locals
    are architecturally exact at every point of every iteration while
    ``R`` goes stale.  ``flush``/``take_pending`` return nothing -- the
    pre-fault write-backs a :class:`_BlockEnv` emits are deliberately
    elided inside the loop body (see the module docstring) and there is
    no lazy-load state to realize.  The only write-backs are
    :meth:`peek_flush` at observation points: a uniform ``R[n] = xn``
    over the statically-written set, which is exact at any exit in any
    iteration precisely because the body is straight-line (guards only
    leave it) and the locals are always current.  Literal knowledge is
    kept for read-folding, but a known write still assigns the local --
    ``peek_flush`` depends on it.
    """

    def __init__(self, decoded, segments) -> None:
        touched: set[int] = set()
        written: set[int] = set()
        for start, length in segments:
            for instr in decoded[start:start + length]:
                touched.update(_read_regs(instr))
                target = _written_reg(instr)
                if target:
                    touched.add(target)
                    written.add(target)
        self.cached = touched
        self.written = written
        self.known: dict[int, int] = {}

    def entry_loads(self) -> list[str]:
        """One ``xn = R[n]`` per touched register, before the loop.

        Write-only registers are loaded too: an iteration-1 guard exit
        flushes the full written set, including registers whose first
        write sits later on the path than the guard.
        """
        return [f"x{reg} = R[{reg}]" for reg in sorted(self.cached)]

    def read(self, reg: int) -> tuple[str, int | None]:
        if reg == 0:
            return "0", 0
        value = self.known.get(reg)
        if value is not None:
            return str(value), value
        if reg in self.cached:
            return f"x{reg}", None
        return f"R[{reg}]", None  # pragma: no cover -- prepass covers all

    def write(self, reg: int, expr: str | None, value: int | None = None) -> list[str]:
        if value is not None:
            self.known[reg] = value
            expr = str(value)
        else:
            self.known.pop(reg, None)
        if reg in self.cached:
            return [f"x{reg} = {expr}"]
        return [f"R[{reg}] = {expr}"]  # pragma: no cover -- prepass covers all

    def take_pending(self) -> list[str]:
        return []

    def flush(self) -> list[str]:
        return []

    def peek_flush(self) -> list[str]:
        return [f"R[{reg}] = x{reg}" for reg in sorted(self.written)]


def _exit_stmts(guard) -> list[str]:
    """The hand-back at a guarded exit, via the cross-trace link slot.

    When :meth:`SuperblockTable._relink` has patched the slot (the exit
    lands on another installed trace's anchor), the exit tail-calls that
    trace directly -- identical semantics to returning the index and
    having the dispatch loop call ``fns[index]()``, minus the loop
    round-trip.  Unlinked slots hold ``None`` and the exit returns to
    dispatch as before.
    """
    return [
        f"_l = LK[{guard.slot}]",
        "if _l is not None:",
        "    return _l()",
        f"return {guard.exit_index}",
    ]


def _emit_guard(cg, env, instr, guard, body) -> list[str]:
    """The side exit for an in-trace branch.

    Hot-taken: exit on the *not-taken* condition, no ``T`` bump (the hot
    path's taken count is deferred to the downstream counters' tsites).
    Hot-fallthrough: exit on the taken condition, ``T`` bumped inline
    (exits are cold, one statement there is free).  Either way the exit
    write-backs via ``peek_flush`` so the hot path's deferred state
    survives the emission point.
    """
    prelude, pos, neg = cg.branch_condition(instr, env)
    lines = env.take_pending() + prelude
    if guard.hot_taken:
        lines.append(f"if {neg}:")
        tail = []
    else:
        lines.append(f"if {pos}:")
        tail = [f"    T[{guard.idx}] += 1"]
    tail.append(f"    BC[{guard.bid}] += 1")
    tail.extend("    " + stmt for stmt in env.peek_flush())
    tail.extend("    " + stmt for stmt in _exit_stmts(guard))
    return [body + line for line in lines + tail]


def _emit_one(table, plan, name: str, lines: list[str]) -> TraceInfo:
    """Emit one trace function into *lines*; returns its TraceInfo."""
    cg = table._cg
    decoded = table._decoded
    segments = plan.segments
    indent = "    "
    lines.append(f"{indent}def {name}():")
    body = indent + "    "

    # -- counters: one bid per distinct runtime path through the trace,
    # -- plus one cross-trace link slot per guarded exit
    hot_taken_sites: list[int] = []
    for guard in plan.guards:
        guard.bid = table._new_bid(segments[:guard.seg_no + 1],
                                   tuple(hot_taken_sites))
        guard.slot = table._new_link()
        if guard.hot_taken:
            hot_taken_sites.append(guard.idx)
    guard_bids = tuple(guard.bid for guard in plan.guards)
    back = plan.back
    if back is not None:
        back.slot = table._new_link()
    sites = tuple((guard.slot, guard.exit_index) for guard in plan.guards)
    if back is not None:
        sites += ((back.slot, back.exit_index),)
    if plan.loop:
        iter_sites = list(hot_taken_sites)
        if back is not None and back.hot_taken:
            iter_sites.append(back.idx)
        iter_bid = table._new_bid(segments, tuple(iter_sites))
        if back is not None:
            back.bid = table._new_bid(segments, tuple(hot_taken_sites))
        exhaust_bid = table._new_bid((), ())
        cycles = max(1, TRACE_CAP // plan.total)
        cap = cycles * plan.total
        env = _LoopEnv(decoded, segments)
        lines.extend(body + stmt for stmt in env.entry_loads())
        lines.append(f"{body}for _ in range({cycles}):")
        body += "    "
        bids = guard_bids + (iter_bid,) + \
            ((back.bid,) if back is not None else ())
        call_bids = guard_bids + (exhaust_bid,) + \
            ((back.bid,) if back is not None else ())
    else:
        env = cg.cache_env(segments)
        full_bid = table._new_bid(segments, tuple(hot_taken_sites))
        cap = plan.total
        bids = guard_bids + (full_bid,)
        call_bids = bids

    # -- body: segments back to back, guards at non-final branch ends
    last_seg = len(segments) - 1
    guard_at = {guard.seg_no: guard for guard in plan.guards}
    for seg_no, (start, length) in enumerate(segments):
        final = seg_no == last_seg
        for offset in range(length):
            index = start + offset
            instr = decoded[index]
            m = instr.mnemonic
            terminator = offset == length - 1 and m in CONTROL_TRANSFERS
            if not terminator:
                flush = env.flush() if m in _MAY_FAULT else []
                emitted = cg.straightline(instr, env)
                stmts = env.take_pending() + flush + emitted
                lines.extend(body + stmt for stmt in stmts)
                continue
            if not final:
                guard = guard_at.get(seg_no)
                if guard is not None:
                    lines.extend(_emit_guard(cg, env, instr, guard, body))
                elif m == "jal":  # fused jump: only the link write remains
                    pc = table._text_base + (index << 2)
                    lines.extend(body + stmt
                                 for stmt in env.write(31, None, pc + 4))
                continue
            # -- final segment: back edge (loop) or counted natural end
            if plan.loop:
                if back is not None:
                    # conditional back edge: continue on the hot side,
                    # exit (counted against the full body) on the other
                    prelude, pos, neg = cg.branch_condition(instr, env)
                    cont = pos if back.hot_taken else neg
                    stmts = env.take_pending() + prelude + [f"if {cont}:"]
                    stmts.append(f"    BC[{iter_bid}] += 1")
                    stmts.append("    continue")
                    if not back.hot_taken:
                        stmts.append(f"T[{back.idx}] += 1")
                    stmts.append(f"BC[{back.bid}] += 1")
                    stmts.extend(env.peek_flush())
                    stmts.extend(_exit_stmts(back))
                else:
                    stmts = []
                    if m == "jal":
                        pc = table._text_base + (index << 2)
                        stmts.extend(env.write(31, None, pc + 4))
                    stmts.append(f"BC[{iter_bid}] += 1")
                    stmts.append("continue")
                lines.extend(body + stmt for stmt in stmts)
            else:
                lines.append(f"{body}BC[{full_bid}] += 1")
                lines.extend(body + stmt
                             for stmt in cg.terminator(instr, index, env))
        if final and decoded[start + length - 1].mnemonic not in CONTROL_TRANSFERS:
            # path ended on a plain fall-through (growth stopped at the
            # next leader): count the full pass and hand back to dispatch
            if plan.loop:
                stmts = [f"BC[{iter_bid}] += 1", "continue"]
            else:
                stmts = [f"BC[{full_bid}] += 1"] + env.peek_flush() + \
                    [f"return {start + length}"]
            lines.extend(body + stmt for stmt in stmts)
    if plan.loop:
        # range exhausted: iterations never write R back, so flush the
        # carried locals here, then return to dispatch at the anchor
        lines.append(f"{indent}    BC[{exhaust_bid}] += 1")
        lines.extend(f"{indent}    " + stmt for stmt in env.peek_flush())
        lines.append(f"{indent}    return {plan.anchor}")

    return TraceInfo(
        anchor=plan.anchor, blocks=tuple(segments), loop=plan.loop,
        guards=len(plan.guards), cap=cap,
        _table=table, _bids=bids, _call_bids=call_bids, _sites=sites,
    )


def install_traces(table, counts, taken) -> None:
    """Plan, compile, and install traces; extends ``table.traces``.

    One generated module holds every trace of this build.  Traces are
    installed into ``table.fns`` only -- ``table.entries`` keeps the
    counting units, so the sampled path and the spill machinery never
    interact with trace functions.
    """
    plans = plan_traces(table, counts, taken)
    if not plans:
        return
    lines = [_FACTORY, "    fns = {}"]
    infos = []
    for plan in plans:
        name = f"_t{plan.anchor}"
        infos.append(_emit_one(table, plan, name, lines))
        lines.append(f"    fns[{plan.anchor}] = {name}")
    lines.append("    return fns")
    source = "\n".join(lines) + "\n"
    code = compile(source, "<traces>", "exec")
    namespace: dict = {}
    exec(code, namespace)
    fns = namespace["_factory"](**table._ns)
    bound = table.call_bound
    for info in infos:
        table.fns[info.anchor] = fns[info.anchor]
        table._traced.add(info.anchor)
        table.traces.append(info)
        if info.cap > bound:
            bound = info.cap
    table.call_bound = bound

    # record the build so later tables on the same program content replay
    # it (compiled code + counter layout + link sites) instead of
    # re-profiling; with persistence on the table also republishes the
    # program's artifact list to the on-disk trace cache
    build_bids = sorted(
        {bid for info in infos
         for bid in set(info._bids) | set(info._call_bids)}
    )
    table._record_build({
        "code": code,
        "bids": [(bid, table.members[bid], table.tsites[bid])
                 for bid in build_bids],
        "infos": [(info.anchor, info.blocks, info.loop, info.guards,
                   info.cap, info._bids, info._call_bids, info._sites)
                  for info in infos],
    })
