"""Superblock dispatch: the simulator's compiled execution tiers.

The threaded-code interpreter in :mod:`repro.sim.cpu` pays one closure
call per *instruction*.  This package compiles the program into
progressively larger generated-Python units so the dispatch loop pays
one call per basic block, per fused j-chain, or per hot-path trace:

* :mod:`~repro.sim.superblock.leaders` -- block formation (leader
  discovery over decoded text + data-section jump tables);
* :mod:`~repro.sim.superblock.codegen` -- the shared code generator:
  block-local register JIT, literal propagation, multi-segment units;
* :mod:`~repro.sim.superblock.dispatch` -- :class:`SuperblockTable`,
  the whole-module compile, cold-counter spill, and the table the
  dispatch loops index;
* :mod:`~repro.sim.superblock.traces` -- the trace tier: hot
  taken-branch paths chained into guarded multi-block functions.

Exact statistics are the invariant throughout: per-unit entry counters
fold into the per-instruction ``counts``/``taken`` arrays at every
observation point, so all tiers are bit-identical to the reference
interpreter -- :mod:`tests.sim.test_differential` enforces it.
"""

from repro.sim.superblock.dispatch import SuperblockTable
from repro.sim.superblock.leaders import BRANCHES, CONTROL_TRANSFERS, find_leaders
from repro.sim.superblock.traces import TraceInfo

__all__ = [
    "BRANCHES",
    "CONTROL_TRANSFERS",
    "SuperblockTable",
    "TraceInfo",
    "find_leaders",
]
