"""Persistent, content-addressed trace-build cache (ROADMAP item g).

A warmup run profiles, plans, and compiles its traces; those builds are
worth keeping.  The in-process side of the cache maps a **content key**
-- executable bytes, codegen-relevant knobs, the interpreter's bytecode
magic, and the same package-source fingerprint the flow cache uses --
to the list of build artifacts :func:`install_traces` records, so any
table on an identical program replays compiled code objects instead of
re-profiling.  Keying by content (not ``id(exe)``) removes the id-reuse
hazard of the old per-object cache and lets two distinct ``Executable``
instances of the same program share one set of builds.

The on-disk side persists that artifact list through a
:class:`~repro.service.store.ShardedStore` under
``REPRO_TRACE_CACHE_DIR`` (``marshal``-encoded: artifacts are plain
containers plus compiled code objects, which ``marshal`` round-trips
and ``pickle`` cannot).  A second *process* then starts trace-warm via
the exact ``_replay`` path the in-process cache already exercises.
Invalidation is by construction: the key covers everything the
generated code depends on, so an edit to the package source, a new
interpreter, a different profile mode, or a format bump simply misses.
"""

from __future__ import annotations

import hashlib
import importlib.util
import marshal
import os
from collections import OrderedDict
from pathlib import Path

from repro.flow_cache import _source_fingerprint, cache_enabled
from repro.service.store import BUDGET_ENV, ShardedStore, get_store, parse_budget

__all__ = [
    "PERSIST_FORMAT",
    "TRACE_CACHE_DIR_ENV",
    "TRACE_PERSIST_ENV",
    "artifacts_for",
    "invalidate",
    "persist_enabled",
    "publish",
    "trace_cache_dir",
    "trace_key",
    "trace_store",
]

#: bump on any change to the artifact layout or the generated factory
#: signature -- stale entries then miss instead of replaying wrong code
PERSIST_FORMAT = 1

TRACE_CACHE_DIR_ENV = "REPRO_TRACE_CACHE_DIR"
TRACE_PERSIST_ENV = "REPRO_TRACE_PERSIST"

#: in-process artifact lists, content-keyed.  Bounded: fuzzers create
#: hundreds of distinct programs per process, and each entry pins
#: compiled code objects
_MEMORY_CAP = 32
_MEMORY: "OrderedDict[str, list]" = OrderedDict()


def persist_enabled() -> bool:
    """The on-disk default: follow ``REPRO_TRACE_PERSIST``, falling back
    to the global ``REPRO_CACHE`` toggle when unset (so ``REPRO_CACHE=off``
    test environments stay hermetic without extra knobs)."""
    value = os.environ.get(TRACE_PERSIST_ENV)
    if value is None:
        return cache_enabled()
    return value.lower() not in ("0", "off", "no", "false")


def trace_cache_dir() -> Path:
    root = os.environ.get(TRACE_CACHE_DIR_ENV)
    if root:
        return Path(root)
    shared = os.environ.get("REPRO_CACHE_DIR")
    if shared:
        return Path(shared) / "traces"
    return Path.home() / ".cache" / "repro" / "traces"


def trace_store() -> ShardedStore:
    """The process-wide sharded store backing the trace cache."""
    budget = parse_budget(os.environ.get(BUDGET_ENV))
    return get_store(trace_cache_dir(), budget, suffix=".trc")


def trace_key(exe, profile: bool) -> str:
    """Content hash of everything the generated trace code depends on.

    ``exe.to_bytes()`` covers entry point, section layout, text, and
    data (the decoded program *is* the text); ``MAGIC_NUMBER`` covers
    the interpreter version the cached code objects were compiled by;
    the source fingerprint covers the generator itself.
    """
    digest = hashlib.sha256()
    digest.update(b"trace-cache\x1f%d\x1f" % PERSIST_FORMAT)
    digest.update(importlib.util.MAGIC_NUMBER)
    digest.update(_source_fingerprint().encode())
    digest.update(b"\x1fprofile=%d\x1f" % int(profile))
    digest.update(exe.to_bytes())
    return digest.hexdigest()


def _decode(data: bytes) -> list:
    artifacts = marshal.loads(data)
    if not isinstance(artifacts, list):
        raise ValueError("trace cache entry is not an artifact list")
    for artifact in artifacts:
        if not isinstance(artifact, dict) or not (
            {"code", "bids", "infos"} <= artifact.keys()
        ):
            raise ValueError("malformed trace cache artifact")
    return artifacts


def artifacts_for(key: str, persist: bool) -> list:
    """The shared artifact list for *key* (memory first, then disk).

    Always returns the same ``list`` object for a given key while it
    stays in the memory cache, so every table on the same program
    appends to -- and replays from -- one list.
    """
    artifacts = _MEMORY.get(key)
    if artifacts is not None:
        _MEMORY.move_to_end(key)
        return artifacts
    if persist:
        artifacts = trace_store().load(key, _decode)
    if artifacts is None:
        artifacts = []
    _MEMORY[key] = artifacts
    while len(_MEMORY) > _MEMORY_CAP:
        _MEMORY.popitem(last=False)
    return artifacts


def publish(key: str, artifacts: list) -> None:
    """Persist the current artifact list for *key* (best effort)."""
    try:
        data = marshal.dumps(artifacts)
    except ValueError:
        return  # unmarshallable artifact: keep the in-process cache only
    trace_store().store(key, data)


def invalidate(key: str, persist: bool) -> None:
    """Drop *key* everywhere (poisoned or superseded entries)."""
    _MEMORY.pop(key, None)
    if persist:
        trace_store().discard(key)
