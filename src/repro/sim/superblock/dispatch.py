"""The superblock dispatch table: one whole-module compile per program.

All leader blocks are emitted into a *single* generated source and
``compile()``d once (ROADMAP item d) -- one code object per program
instead of one closure chain per block, so the dispatch loop's
``fns[index]()`` calls land on functions that share a module and its
constant pool.  Three performance layers sit on that substrate:

* **j-chain fusion** (item a): a leader whose block ends in an
  unconditional ``j``/``jal`` with a static in-text target *inlines* the
  target block (and so on, bounded), so the fused jump costs at most a
  deferred link write instead of a dispatch round-trip.  The unit's
  entry counter covers every member segment; :meth:`fold_into` expands
  it exactly.
* **trace tier** (item b): after the dispatch loop has run a few
  sprees, :meth:`build_traces` chains the hottest taken-branch paths
  into multi-block traces with guarded side exits (see
  :mod:`repro.sim.superblock.traces`).  Traces install into :attr:`fns`
  only -- :attr:`entries` always keeps the per-unit counting functions,
  so the budget-exact sampled path (:meth:`Cpu.run_sampled`) never sees
  a trace and stays bit-identical by construction.
* **cold-counter spill** (item c): a unit whose counter shows no delta
  for ``spill_after`` consecutive folds is dropped from the fold scan
  (its counter increment is "spilled" out of the observation path) and
  its slots are replaced by a reheat stub; if the block runs again the
  stub re-installs the counting function *first* and tail-calls it, so
  per-instruction counts stay exact even under sampling hooks.  The win
  is fold cost: long-running sampled workloads (the
  :mod:`repro.dynamic` drivers fold every few thousand instructions)
  scan only the live hot set instead of every unit ever created.

Exactness contract (unchanged from the monolithic version): a unit
either runs to its end or raises at a terminator, every generated
function starts by bumping its ``BC`` counter, and at every observation
point the deltas fold into the per-instruction ``counts``/``taken``
arrays the rest of the simulator derives statistics from.
"""

from __future__ import annotations

from time import perf_counter

from repro.errors import SimulationError
from repro.sim.cpu import _Halt
from repro.sim.superblock import persist
from repro.sim.superblock.codegen import FACTORY as _FACTORY
from repro.sim.superblock.codegen import Codegen
from repro.sim.superblock.leaders import CONTROL_TRANSFERS, find_leaders
from repro.sim.superblock.traces import MAX_TRACES, TraceInfo, install_traces

__all__ = ["SuperblockTable", "REPLAN_CAP", "REPLAN_STREAK"]

#: j-chain fusion bounds: chains stop after this many fused blocks or
#: this many total instructions, keeping generated units (and the
#: sampled path's whole-unit budget check) reasonably sized
_CHAIN_MAX_BLOCKS = 8
_CHAIN_MAX_INSTRS = 192

#: re-planning bounds (ROADMAP item e): retire-and-rebuild fires after
#: the installed traces' share of executed instructions stays below the
#: cpu's ``replan_threshold`` for this many consecutive monitoring
#: folds, and at most this many times per table -- a workload that
#: oscillates faster than the cap settles into whatever set the last
#: replan built instead of thrashing the compiler
REPLAN_STREAK = 3
REPLAN_CAP = 4


class SuperblockTable:
    """Block structure + generated unit functions for one :class:`Cpu`.

    Public surface used by the dispatch loop:

    * ``entries[index] -> (n, fn | None)`` -- instruction count and
      *counting* generated function for every handler slot (escape slots
      reuse the threaded escape handlers with length 1); ``fn is None``
      marks a mid-block index nobody has jumped to yet.  Traces are
      never installed here.
    * ``fns[index]`` -- the fast-path view used by unchunked dispatch
      sprees: same functions, except hot anchors may hold a trace.
    * :meth:`materialize` -- build the suffix unit for a dynamic jump to
      a mid-block index.
    * :meth:`reset` / :meth:`fold_into` -- zero the per-unit counters at
      run start / fold their deltas into the per-instruction arrays.
    * :meth:`build_traces` -- incremental trace-tier construction,
      called by the dispatch loop at warmup checkpoints.
    * :attr:`blocks` -- the leader partition, for introspection and the
      formation property tests; :attr:`chains` / :attr:`traces` /
      :attr:`spilled` -- introspection for the fusion and trace tiers.
    * :attr:`call_bound` -- max instructions any single ``fns`` call may
      execute; the unchunked spree sizing divides by this.
    """

    def __init__(self, cpu) -> None:
        self._cpu = cpu
        self._decoded = cpu._decoded
        self._text_base = cpu.exe.text_base
        self._text_len = len(cpu._decoded)
        self._profile = cpu.profile
        self._taken_arr = cpu._taken
        self._spill_after = getattr(cpu, "_spill_after", 0)
        self.leaders = find_leaders(
            self._decoded, self._text_base, self._text_len, cpu.exe.data
        )

        # suffix_len[i]: instructions from i to the end of i's block
        decoded = self._decoded
        leaders = self.leaders
        suffix = [1] * self._text_len
        for i in range(self._text_len - 2, -1, -1):
            if decoded[i].mnemonic in CONTROL_TRANSFERS or (i + 1) in leaders:
                suffix[i] = 1
            else:
                suffix[i] = suffix[i + 1] + 1
        self.suffix_len = suffix

        #: per-unit entry counters / fold watermarks / member segments /
        #: deferred branch-taken sites (traces pass hot-taken guards
        #: without a per-iteration T bump; the fold adds delta per site)
        self.bcounts: list[int] = []
        self._folded: list[int] = []
        self.members: list[tuple[tuple[int, int], ...]] = []
        self.tsites: list[tuple[int, ...]] = []
        #: bids the fold scan visits; cold units are removed (spilled)
        self.live: list[int] = []
        self._cold: list[int] = []
        #: spill bookkeeping: unit -> its entries/fns slot + counting fn
        self._home: dict[int, int] = {}
        self._counting: dict[int, object] = {}
        self.spilled = 0
        self.reheats = 0

        #: cumulative generated-code cost (leader build, materialize,
        #: trace builds/replays); always-on -- a couple of perf_counter
        #: calls around each rare compile, nothing in dispatch
        self.codegen_seconds = 0.0
        self.trace_builds = 0
        #: watermark for :meth:`consume_stats`
        self._obs_seen: dict[str, float] = {}

        #: trace tier state (populated by :meth:`build_traces`)
        self.traces: list = []
        self._traced: set[int] = set()
        self.traces_built = False

        #: cross-trace link table (item f): generated guard exits read
        #: ``LK[slot]`` and call the linked trace directly when the slot
        #: holds a function.  The list object is baked into every
        #: generated module's namespace, so it must never be reassigned
        #: -- only grown and mutated in place
        self._links: list = []
        self.trace_links = 0
        self.links_made = 0
        self.links_severed = 0

        #: re-planning state (item e): traces retired by a replan keep
        #: their TraceInfo handles here so tier accounting stays exact
        self.replans_total = 0
        self.retired: list = []
        self.replan_threshold = float(getattr(cpu, "_replan_threshold", 0.0))
        self._mon_trace: int | None = None
        self._mon_total = 0
        self._mon_streak = 0
        #: planning baselines: a replan snapshots the cumulative profile
        #: so the rebuild plans from post-replan deltas only, without
        #: disturbing the counters the exactness contract folds into
        self._base_counts: list[int] | None = None
        self._base_taken: list[int] | None = None
        self._base_bcounts: list[int] | None = None

        handlers = cpu._handlers
        entries: list[tuple] = [(1, handlers[slot]) for slot in range(len(handlers))]
        for i in range(self._text_len):
            entries[i] = (suffix[i], None)
        self.entries = entries
        self.fns: list = [entry[1] for entry in entries]

        memory = cpu.memory
        self._ns = {
            "R": cpu.regs,
            "T": cpu._taken,
            "BC": self.bcounts,
            "HL": cpu._hilo,
            "DE": cpu._dyn_edges,
            "r8": memory.read_u8,
            "r16": memory.read_u16,
            "r32": memory.read_u32,
            "w8": memory.write_u8,
            "w16": memory.write_u16,
            "w32": memory.write_u32,
            "Halt": _Halt,
            "Err": SimulationError,
            "LK": self._links,
        }
        self._cg = Codegen(
            decoded, self._text_base, self._text_len, self._profile,
            cpu._escape_slots,
        )
        #: leader -> fused segment tuple, for chains longer than one block
        self.chains: dict[int, tuple[tuple[int, int], ...]] = {}
        self._build_leader_units()
        self.call_bound = max((entry[0] for entry in self.entries), default=1)
        #: unit-tier dispatch bound: installing traces raises
        #: :attr:`call_bound` (to the largest trace cap) but not this,
        #: so the dispatch loop can wind down through ``entries`` once
        #: the remaining budget is below a trace call
        self.unit_bound = self.call_bound

        #: this program's trace builds, shared across tables (and, when
        #: persistence is on, across processes) through the content-hash
        #: keyed cache in :mod:`~repro.sim.superblock.persist`; ``None``
        #: when the trace tier is disabled for this cpu
        self._cache: list | None = None
        self._cache_key = ""
        self._persist = False
        if getattr(cpu, "_trace_threshold", 0):
            flag = getattr(cpu, "_trace_persist", None)
            self._persist = persist.persist_enabled() if flag is None else bool(flag)
            self._cache_key = persist.trace_key(cpu.exe, self._profile)
            self._cache = persist.artifacts_for(self._cache_key, self._persist)
            try:
                for artifact in self._cache:
                    self._replay(artifact)
            except Exception:
                # a poisoned artifact costs one cold build, never a
                # crash on every future run: drop the entry everywhere
                # and carry on with whatever replayed cleanly
                del self._cache[:]
                persist.invalidate(self._cache_key, self._persist)
            if self.traces:
                self._relink()

    # -- public surface ----------------------------------------------------

    @property
    def blocks(self) -> list[tuple[int, int]]:
        """The leader partition as (start index, length), sorted.

        Chain fusion and traces never change the partition -- they only
        change how many partition blocks one generated call executes.
        """
        return [(leader, self.suffix_len[leader]) for leader in sorted(self.leaders)]

    @property
    def max_block_len(self) -> int:
        """Longest single partition block (pre-fusion), for introspection."""
        return max(self.suffix_len, default=1)

    def reset(self) -> None:
        bcounts = self.bcounts
        folded = self._folded
        cold = self._cold
        for i in range(len(bcounts)):
            bcounts[i] = 0
            folded[i] = 0
            cold[i] = 0
        # monitoring watermarks and planning baselines index into the
        # per-run counter arrays, so they never survive a reset
        self._mon_trace = None
        self._mon_total = 0
        self._mon_streak = 0
        self._base_counts = None
        self._base_taken = None
        self._base_bcounts = None

    def fold_into(self, counts: list[int]) -> None:
        """Fold per-unit entry deltas into the per-instruction counters.

        Only :attr:`live` units are scanned.  A unit with no delta for
        ``spill_after`` consecutive folds is spilled: removed from the
        scan and stubbed so it re-registers itself if it ever reheats.
        """
        bcounts = self.bcounts
        folded = self._folded
        members = self.members
        tsites = self.tsites
        taken = self._taken_arr
        cold = self._cold
        spill_after = self._spill_after
        spills = None
        for bid in self.live:
            delta = bcounts[bid] - folded[bid]
            if delta:
                folded[bid] = bcounts[bid]
                for start, length in members[bid]:
                    for i in range(start, start + length):
                        counts[i] += delta
                for site in tsites[bid]:
                    taken[site] += delta
                cold[bid] = 0
            elif spill_after:
                streak = cold[bid] + 1
                cold[bid] = streak
                if streak >= spill_after and self._spillable(bid):
                    if spills is None:
                        spills = []
                    spills.append(bid)
        if spills:
            for bid in spills:
                self._spill(bid)

    def materialize(self, index: int) -> tuple:
        """Generate the suffix unit for a dynamic jump to mid-block *index*.

        Only ever called for indices whose entry is ``(n, None)`` --
        anchors and leaders are populated at build time, so a trace
        installed in :attr:`fns` can never be overwritten here.  Suffix
        units are never chain-fused: the sampled dispatch loop budget-
        checks the ``(n, None)`` placeholder *before* materializing, so
        the generated unit must execute exactly ``suffix_len`` steps.
        """
        segments = ((index, self.suffix_len[index]),)
        bid = self._new_bid(segments)
        started = perf_counter()
        source = _FACTORY + "\n"
        source += "\n".join(self._cg.emit_unit("_b", segments, bid, "    ")) + "\n"
        source += "    return _b\n"
        namespace: dict = {}
        exec(compile(source, f"<superblock@{index}>", "exec"), namespace)
        fn = namespace["_factory"](**self._ns)
        self.codegen_seconds += perf_counter() - started
        total = sum(length for _, length in segments)
        entry = (total, fn)
        self.entries[index] = entry
        self.fns[index] = fn
        self._home[bid] = index
        self._counting[bid] = fn
        if total > self.call_bound:
            self.call_bound = total
        return entry

    def build_traces(self, counts: list[int]) -> bool:
        """One incremental trace build from the folded profile.

        The dispatch loop calls this at every warmup checkpoint, so a
        loop whose hot phase starts after a cold init still gets traced.
        Returns whether trace capacity remains (``False`` ends warmup).
        """
        self.traces_built = True
        self.trace_builds += 1
        started = perf_counter()
        install_traces(self, counts, self._taken_arr)
        self._relink()
        self.codegen_seconds += perf_counter() - started
        return len(self.traces) < MAX_TRACES

    # -- re-planning (item e) and cross-trace linking (item f) ---------------

    @property
    def monitor_enabled(self) -> bool:
        """Whether post-warmup sprees should stay capped for monitoring.

        True while traces are installed, re-planning is on, and the
        replan cap has headroom; once any of those stops holding, the
        dispatch loop reverts to full-budget sprees (one fold per run).
        """
        return (bool(self.traces) and self.replan_threshold > 0.0
                and self.replans_total < REPLAN_CAP)

    def check_replan(self, counts: list[int], executed: int) -> bool:
        """One monitoring checkpoint; returns whether a replan fired.

        The dispatch loop calls this at post-warmup folds while traces
        are installed.  The watermark is the installed traces' share of
        the instructions executed since the previous checkpoint (both
        already maintained by the fold -- the check is a handful of
        reads, no new counters).  A share below ``replan_threshold``
        for :data:`REPLAN_STREAK` consecutive checkpoints means the hot
        set moved: retire the stale traces and re-enter warmup.
        """
        trace_instr = sum(info.instructions for info in self.traces)
        prev_trace = self._mon_trace
        prev_total = self._mon_total
        self._mon_trace = trace_instr
        self._mon_total = executed
        if prev_trace is None:
            return False  # first checkpoint: establish the watermark
        delta_total = executed - prev_total
        if delta_total <= 0:
            return False
        share = (trace_instr - prev_trace) / delta_total
        if share >= self.replan_threshold:
            self._mon_streak = 0
            return False
        self._mon_streak += 1
        if self._mon_streak < REPLAN_STREAK:
            return False
        self._replan(counts)
        return True

    def _replan(self, counts: list[int]) -> None:
        """Retire every installed trace and arm a fresh build round.

        Counters are never reset -- the exactness contract folds them at
        the next observation point exactly as if the traces were still
        installed.  Instead the cumulative profile is *snapshotted*, so
        the rebuild plans from post-replan deltas: the new hot set, not
        the whole run's history dominated by the dead phase.
        """
        self.replans_total += 1
        self._mon_streak = 0
        self._mon_trace = None
        self._base_counts = counts[:]
        self._base_taken = self._taken_arr[:]
        self._base_bcounts = self.bcounts[:]
        links = self._links
        for info in self.traces:
            # entries always kept the counting unit (or a reheat stub,
            # which re-registers the counting fn on its first call)
            self.fns[info.anchor] = self.entries[info.anchor][1]
            for slot, _exit in info._sites:
                if links[slot] is not None:
                    self.links_severed += 1
                links[slot] = None
        self.retired.extend(self.traces)
        self.traces = []
        self._traced.clear()
        self._relink()
        # stale builds must not replay into future tables on this program
        if self._cache:
            del self._cache[:]
            persist.invalidate(self._cache_key, self._persist)

    def _new_link(self) -> int:
        """Allocate one cross-trace link slot (emission-time helper)."""
        self._links.append(None)
        return len(self._links) - 1

    def _record_build(self, artifact: dict) -> None:
        """Record one trace build for replay by later tables; when
        persistence is on, republish the program's whole artifact list."""
        cache = self._cache
        if cache is None:
            return
        cache.append(artifact)
        if self._persist:
            persist.publish(self._cache_key, cache)

    def _relink(self) -> None:
        """Rebuild the cross-trace link table from the active trace set.

        A guard exit whose target index is another installed trace's
        anchor gets that trace's function patched into its ``LK`` slot,
        so the exit tail-calls the successor trace directly instead of
        returning to the dispatch loop.  Admission is DAG-only: a link
        cycle would nest Python frames without bound (A exits into B,
        B exits into A, ...), so edges that would close a cycle are
        refused and those exits keep returning to dispatch.  Retired or
        unlinkable targets leave their slot ``None``.  ``call_bound``
        is raised to the longest linked chain's instruction total, so
        the dispatch loop's spree sizing stays overshoot-free.
        """
        links = self._links
        traces = self.traces
        by_anchor = {info.anchor: info for info in traces}
        edges: dict[int, set[int]] = {info.anchor: set() for info in traces}

        def reaches(src: int, dst: int) -> bool:
            stack = [src]
            seen: set[int] = set()
            while stack:
                node = stack.pop()
                if node == dst:
                    return True
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(edges[node])
            return False

        active = 0
        for info in traces:
            for slot, exit_index in info._sites:
                target = by_anchor.get(exit_index)
                if (target is not None and exit_index != info.anchor
                        and not reaches(exit_index, info.anchor)):
                    if links[slot] is None:
                        self.links_made += 1
                    links[slot] = self.fns[exit_index]
                    edges[info.anchor].add(exit_index)
                    active += 1
                else:
                    if links[slot] is not None:
                        self.links_severed += 1
                    links[slot] = None
        self.trace_links = active

        # longest instruction chain one fns call can now execute
        memo: dict[int, int] = {}

        def chain_cap(info) -> int:
            cached = memo.get(info.anchor)
            if cached is not None:
                return cached
            best = 0
            for slot, exit_index in info._sites:
                if links[slot] is not None:
                    succ = by_anchor.get(exit_index)
                    if succ is not None:
                        depth = chain_cap(succ)
                        if depth > best:
                            best = depth
            memo[info.anchor] = total = info.cap + best
            return total

        bound = self.unit_bound
        for info in traces:
            cap = chain_cap(info)
            if cap > bound:
                bound = cap
        self.call_bound = bound

    # -- telemetry (run-end introspection; nothing here runs in dispatch) ----

    def tier_breakdown(self) -> tuple[int, int]:
        """(unit-tier, trace-tier) instructions in this run's counters.

        Unit-tier instructions come from the units with a dispatch slot
        (leader chains and materialized suffixes, via ``_home``); trace
        instructions from the installed traces' own counters.  The two
        bid sets are disjoint, and whatever remains of ``RunResult.steps``
        was single-stepped through the threaded handlers.  ``bcounts``
        reset at run start and survive folds (the fold uses watermarks),
        so this is exact per run.
        """
        bcounts = self.bcounts
        members = self.members
        unit = 0
        for bid, _home in self._home.items():
            c = bcounts[bid]
            if c:
                unit += c * sum(length for _, length in members[bid])
        # retired traces' counters still hold whatever they executed this
        # run before their replan retired them (bcounts reset at run
        # start, so prior-run retirees contribute nothing)
        trace = sum(info.instructions for info in self.traces)
        trace += sum(info.instructions for info in self.retired)
        return unit, trace

    def consume_stats(self) -> dict:
        """Telemetry deltas since the previous call.

        The underlying attributes (``spilled``, ``reheats``,
        ``codegen_seconds``, ...) are cumulative over the table's
        lifetime and shared with introspection; the watermark here lets
        per-run metrics charge each run only its own share.
        """
        stats = {
            "spills": self.spilled,
            "reheats": self.reheats,
            "trace_builds": self.trace_builds,
            "replans": self.replans_total,
            "links_made": self.links_made,
            "links_severed": self.links_severed,
            "codegen_seconds": self.codegen_seconds,
            "codegen_units": self._cg.units_emitted,
            "codegen_lines": self._cg.lines_emitted,
        }
        seen = self._obs_seen
        self._obs_seen = stats
        return {key: value - seen.get(key, 0) for key, value in stats.items()}

    # -- construction ------------------------------------------------------

    def _replay(self, artifact: dict) -> None:
        """Install one cached trace build (recorded by a previous table's
        :func:`install_traces` on the same executable).

        Counter layout must line up with the bid indices baked into the
        cached code object.  Leader-unit bids are deterministic per
        executable, but the recording run may have interleaved
        ``materialize`` bids before its trace bids; those gaps become
        dead placeholders here -- memberless, never bumped, never
        scanned (not in :attr:`live`).
        """
        started = perf_counter()
        for bid, members, tsites in artifact["bids"]:
            while len(self.members) < bid:
                self.members.append(())
                self.tsites.append(())
                self.bcounts.append(0)
                self._folded.append(0)
                self._cold.append(0)
            self._new_bid(members, tsites)
        # link slots are baked into the cached code as absolute LK
        # indices: grow the table past the highest slot any trace uses
        # (slots of builds not replayed stay None forever, which is the
        # unlinked behavior)
        links = self._links
        for info_fields in artifact["infos"]:
            for slot, _exit in info_fields[7]:
                while len(links) <= slot:
                    links.append(None)
        namespace: dict = {}
        exec(artifact["code"], namespace)
        fns = namespace["_factory"](**self._ns)
        bound = self.call_bound
        for (anchor, blocks, loop, guards, cap, bids, call_bids,
             sites) in artifact["infos"]:
            self.fns[anchor] = fns[anchor]
            self._traced.add(anchor)
            self.traces.append(TraceInfo(
                anchor=anchor, blocks=blocks, loop=loop, guards=guards,
                cap=cap, _table=self, _bids=bids, _call_bids=call_bids,
                _sites=tuple(sites),
            ))
            if cap > bound:
                bound = cap
        self.call_bound = bound
        self.traces_built = True
        self.codegen_seconds += perf_counter() - started

    def _chain_segments(self, start: int) -> list[tuple[int, int]]:
        """The fused j-chain starting at *start*, as (start, length) runs.

        Follows unconditional ``j``/``jal`` terminators with static
        in-text targets; stops at any other terminator, at a revisit
        (self-loops must dispatch, or the generated unit would never
        return), and at the fusion caps.
        """
        segments: list[tuple[int, int]] = []
        seen: set[int] = set()
        current = start
        total = 0
        while True:
            length = self.suffix_len[current]
            segments.append((current, length))
            seen.add(current)
            total += length
            last = self._decoded[current + length - 1]
            if (last.mnemonic not in ("j", "jal")
                    or len(segments) >= _CHAIN_MAX_BLOCKS
                    or total >= _CHAIN_MAX_INSTRS):
                break
            pc = self._text_base + ((current + length - 1) << 2)
            t_pc = ((pc + 4) & 0xF000_0000) | (last.target << 2)
            t_idx = (t_pc - self._text_base) >> 2
            if not 0 <= t_idx < self._text_len or t_idx in seen:
                break
            current = t_idx
        return segments

    def _new_bid(self, segments, tsites: tuple[int, ...] = ()) -> int:
        bid = len(self.members)
        self.members.append(tuple(segments))
        self.tsites.append(tuple(tsites))
        self.bcounts.append(0)
        self._folded.append(0)
        self._cold.append(0)
        self.live.append(bid)
        return bid

    def _build_leader_units(self) -> None:
        """Generate one module containing a function per leader chain."""
        started = perf_counter()
        lines = [_FACTORY, "    fns = {}"]
        registry: list[tuple[int, int, int]] = []  # (start, bid, total)
        for start in sorted(self.leaders):
            segments = self._chain_segments(start)
            bid = self._new_bid(segments)
            lines.extend(self._cg.emit_unit(f"_b{start}", segments, bid, "    "))
            lines.append(f"    fns[{start}] = _b{start}")
            registry.append((start, bid, sum(n for _, n in segments)))
            if len(segments) > 1:
                self.chains[start] = tuple(segments)
        lines.append("    return fns")
        source = "\n".join(lines) + "\n"
        namespace: dict = {}
        exec(compile(source, "<superblocks>", "exec"), namespace)
        fns = namespace["_factory"](**self._ns)
        for start, bid, total in registry:
            fn = fns[start]
            self.entries[start] = (total, fn)
            self.fns[start] = fn
            self._home[bid] = start
            self._counting[bid] = fn
        self.codegen_seconds += perf_counter() - started

    # -- cold-counter spill --------------------------------------------------

    def _spillable(self, bid: int) -> bool:
        """Only units still holding their counting fn in *both* views may
        spill -- an installed trace (fns) or an earlier stub must never be
        clobbered."""
        home = self._home.get(bid)
        if home is None:
            return False  # trace bids have no home slot
        counting = self._counting[bid]
        return self.fns[home] is counting and self.entries[home][1] is counting

    def _spill(self, bid: int) -> None:
        home = self._home[bid]
        counting = self._counting[bid]
        n = self.entries[home][0]
        entries = self.entries
        fns = self.fns
        cold = self._cold
        live = self.live

        table = self

        def reheat():
            # re-install the counting fn *before* executing, so the unit
            # is counted from this very call and rejoins the fold scan
            entries[home] = (n, counting)
            if fns[home] is reheat:
                # a trace may have been installed over the stub since the
                # spill; the trace keeps its slot
                fns[home] = counting
            cold[bid] = 0
            live.append(bid)
            table.reheats += 1
            return counting()

        entries[home] = (n, reheat)
        fns[home] = reheat
        live.remove(bid)
        self.spilled += 1
