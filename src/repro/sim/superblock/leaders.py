"""Superblock formation: leaders and the block partition.

Leaders are the entry index, every instruction after a control transfer,
every static branch/jump target, and every data word that looks like a
text address (the compiler's switch jump tables live in ``.data`` as
little-endian word arrays of case-target addresses, so this scan
guarantees jump-table targets start a block).  The leader set only
affects *performance*: a register-indirect jump into the middle of a
block -- possible in principle for hand-written assembly -- lazily
materializes a suffix block starting at that index, so correctness never
depends on the discovery heuristics.
"""

from __future__ import annotations

__all__ = ["BRANCHES", "CONTROL_TRANSFERS", "find_leaders"]

#: a superblock never continues past one of these
CONTROL_TRANSFERS = frozenset((
    "beq", "bne", "blez", "bgtz", "bltz", "bgez",
    "j", "jal", "jr", "jalr", "break", "syscall",
))

BRANCHES = frozenset(("beq", "bne", "blez", "bgtz", "bltz", "bgez"))


def find_leaders(decoded, text_base: int, text_len: int, data: bytes) -> set[int]:
    """Indices that start a superblock.

    The union of: index 0, the successor of every control transfer, every
    in-text static branch/jump target, and every word-aligned text address
    found in the data section (jump-table case targets).
    """
    leaders: set[int] = {0} if text_len else set()
    for index in range(text_len):
        instr = decoded[index]
        m = instr.mnemonic
        if m not in CONTROL_TRANSFERS:
            continue
        if index + 1 < text_len:
            leaders.add(index + 1)
        if m in BRANCHES:
            target = index + 1 + instr.imm
            if 0 <= target < text_len:
                leaders.add(target)
        elif m == "j" or m == "jal":
            pc = text_base + (index << 2)
            t_pc = ((pc + 4) & 0xF000_0000) | (instr.target << 2)
            target = (t_pc - text_base) >> 2
            if 0 <= target < text_len:
                leaders.add(target)
    text_end = text_base + (text_len << 2)
    for offset in range(0, len(data) - 3, 4):
        word = int.from_bytes(data[offset:offset + 4], "little")
        if not word & 3 and text_base <= word < text_end:
            leaders.add((word - text_base) >> 2)
    return leaders
