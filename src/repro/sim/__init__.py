"""Cycle-level MIPS simulator, profiler and instruction-mix statistics.

This package plays the role of the paper's execution platform for the
software side: it runs the compiled binaries, produces the execution-time
numbers for the "software only" baseline, and produces the *profiling
results* (per-address and per-edge execution counts) that drive the paper's
90-10 partitioning heuristic.
"""

from repro.sim.memory import Memory
from repro.sim.cpu import Cpu, CpiModel, RunResult, run_executable
from repro.sim.reference import run_reference
from repro.sim.superblock import SuperblockTable

__all__ = [
    "Cpu", "CpiModel", "Memory", "RunResult", "SuperblockTable",
    "run_executable", "run_reference",
]
