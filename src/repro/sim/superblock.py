"""Superblock dispatch: basic blocks fused into generated Python functions.

The threaded-code interpreter in :mod:`repro.sim.cpu` pays one closure call
per *instruction*.  This module translates each straight-line run of
instructions (a basic block: it ends at a branch, ``j``/``jal``, ``jr``/
``jalr``, ``break``/``syscall``, or immediately before another block's
leader) into **one generated Python function**, so the dispatch loop pays
one call per *block*:

    n, fn = entries[index]
    index = fn()

Design notes:

* **Block formation.**  Leaders are the entry index, every instruction
  after a control transfer, every static branch/jump target, and every
  data word that looks like a text address (the compiler's switch jump
  tables live in ``.data`` as little-endian word arrays of case-target
  addresses, so this scan guarantees jump-table targets start a block).
  The leader set only affects *performance*: a register-indirect jump
  into the middle of a block -- possible in principle for hand-written
  assembly -- lazily materializes a suffix block starting at that index,
  so correctness never depends on the discovery heuristics.
* **Exact statistics.**  Every generated function starts by bumping a
  per-block entry counter; at every observation point (sampling-hook
  chunk boundary, halt) the deltas are folded into the per-instruction
  ``counts`` array the rest of the simulator derives its statistics
  from.  A block either runs to its end or raises an exception that
  aborts/halts the run *at its last instruction* (``break``/``syscall``
  and the ``jr`` target check are always block terminators), so the
  entry count is an exact execution count for every member instruction.
  Branch-taken counts and ``jr``/``jalr`` dynamic edges are recorded
  inline, exactly like the threaded executors do.
* **Exact step budgets.**  The dispatch loop only runs a block when it
  fits in the remaining instruction budget of the current chunk;
  otherwise it falls back to the per-instruction threaded handlers for
  the tail.  Sampling callbacks therefore fire at *exactly* the same
  instruction counts as the threaded engine -- mid-block boundaries
  included -- and ``max_steps`` semantics are bit-identical.
* **Block-local register JIT.**  Within one block, registers touched
  more than once are shadowed by Python locals (``x9`` for ``$9``) with
  *deferred write-back*: loads of ``R[n]`` are emitted lazily at first
  read, stores are batched and flushed only at the points where the
  architectural file is observable -- before any statement that can
  raise (memory accesses, the ``jr``/``jalr`` target check, ``break``/
  ``syscall``) and at block exit.  Dead intermediate writes therefore
  never touch ``R`` at all.  On top of that the generator propagates
  literals: reads of ``$zero`` fold to ``0``, ``lui``/``ori``/``addiu``
  constants fold into the consuming expressions, and fully-constant
  ALU results are computed at generation time.  The folds rely on the
  canonical-u32 invariant: every value stored in ``R`` is already
  masked to 32 bits (the decoder zero-extends logical immediates, every
  executor masks its result), so ``x & 0xFFFFFFFF`` is the identity on
  register reads.
* **Three copies of the ISA semantics** now exist: the reference
  interpreter (:mod:`repro.sim.reference`), the threaded executor
  closures, and the code templates below.  That is deliberate and is
  what ``tests/sim/test_differential.py`` exists for: the three engines
  must produce bit-identical :class:`~repro.sim.cpu.RunResult` stats on
  every benchmark and on randomized programs.

Generated code uses short closure names bound once per ``Cpu``:
``R`` registers, ``T`` per-site branch-taken counters, ``BC`` per-block
entry counters, ``HL`` hi/lo, ``DE`` dynamic-edge dict, ``r8``..``w32``
memory accessors, ``Halt``/``Err`` the exception types.
"""

from __future__ import annotations

from collections import Counter

from repro.errors import SimulationError
from repro.sim.cpu import _Halt

__all__ = ["CONTROL_TRANSFERS", "SuperblockTable", "find_leaders"]

#: a superblock never continues past one of these
CONTROL_TRANSFERS = frozenset((
    "beq", "bne", "blez", "bgtz", "bltz", "bgez",
    "j", "jal", "jr", "jalr", "break", "syscall",
))

_BRANCHES = frozenset(("beq", "bne", "blez", "bgtz", "bltz", "bgez"))

#: memory accessors can raise MemoryFault, so the register file must be
#: architecturally exact before each of these executes
_MAY_FAULT = frozenset(("lw", "lb", "lbu", "lh", "lhu", "sw", "sb", "sh"))

_MASK = 0xFFFF_FFFF
_M = "4294967295"  # 0xFFFF_FFFF as a source literal


def _s32(value: int) -> int:
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


# -- register use analysis (for block-local caching) ------------------------

_READS_RS = frozenset((
    "addiu", "addi", "slti", "sltiu", "andi", "ori", "xori",
    "lw", "lb", "lbu", "lh", "lhu", "sw", "sb", "sh",
    "addu", "add", "subu", "sub", "and", "or", "xor", "nor", "slt", "sltu",
    "sllv", "srlv", "srav", "mult", "multu", "div", "divu", "mthi", "mtlo",
    "beq", "bne", "blez", "bgtz", "bltz", "bgez", "jr", "jalr",
))
_READS_RT = frozenset((
    "sw", "sb", "sh",
    "addu", "add", "subu", "sub", "and", "or", "xor", "nor", "slt", "sltu",
    "sll", "srl", "sra", "sllv", "srlv", "srav",
    "mult", "multu", "div", "divu", "beq", "bne",
))
_WRITES_RT = frozenset((
    "addiu", "addi", "slti", "sltiu", "andi", "ori", "xori", "lui",
    "lw", "lb", "lbu", "lh", "lhu",
))
_WRITES_RD = frozenset((
    "addu", "add", "subu", "sub", "and", "or", "xor", "nor", "slt", "sltu",
    "sll", "srl", "sra", "sllv", "srlv", "srav", "mfhi", "mflo", "jalr",
))


def _read_regs(instr) -> list[int]:
    """Registers *instr* reads, ``$zero`` excluded (it folds to literal 0)."""
    m = instr.mnemonic
    regs = []
    if m in _READS_RS and instr.rs:
        regs.append(instr.rs)
    if m in _READS_RT and instr.rt:
        regs.append(instr.rt)
    return regs


def _written_reg(instr) -> int:
    """Register *instr* writes, or 0 for none (writes to $zero are dropped)."""
    m = instr.mnemonic
    if m in _WRITES_RT:
        return instr.rt
    if m in _WRITES_RD:
        return instr.rd
    if m == "jal":
        return 31
    return 0


class _BlockEnv:
    """Register-file state during code generation of one block.

    Tracks, per architectural register: whether it is shadowed by a block
    local, whether its value is a known literal, and whether ``R`` is
    stale (a deferred write-back is pending).  ``read``/``write`` return
    and consume source fragments; ``flush`` emits the deferred stores.
    """

    def __init__(self, cached: set[int]) -> None:
        self.cached = cached
        self.known: dict[int, int] = {}  # reg -> literal value when known
        self.loaded: set[int] = set()    # cached regs live as x{reg} locals
        self.dirty: set[int] = set()     # cached regs with R[] write-back pending
        self.pending: list[str] = []     # lazy loads owed before the next stmt

    def read(self, reg: int) -> tuple[str, int | None]:
        """(source expression, literal value or None) for *reg*'s value."""
        if reg == 0:
            return "0", 0
        value = self.known.get(reg)
        if value is not None:
            return str(value), value
        if reg in self.cached:
            if reg not in self.loaded:
                self.pending.append(f"x{reg} = R[{reg}]")
                self.loaded.add(reg)
            return f"x{reg}", None
        return f"R[{reg}]", None

    def write(self, reg: int, expr: str | None, value: int | None = None) -> list[str]:
        """Statements realizing a write of *expr* (or literal *value*)."""
        if reg in self.cached:
            self.dirty.add(reg)
            if value is not None:
                self.known[reg] = value
                self.loaded.discard(reg)  # the literal supersedes the local
                return []
            self.known.pop(reg, None)
            self.loaded.add(reg)
            return [f"x{reg} = {expr}"]
        self.known.pop(reg, None)
        if value is not None:
            self.known[reg] = value
            return [f"R[{reg}] = {value}"]
        return [f"R[{reg}] = {expr}"]

    def take_pending(self) -> list[str]:
        lines = self.pending
        self.pending = []
        return lines

    def flush(self) -> list[str]:
        """Deferred write-backs, making ``R`` architecturally exact."""
        lines = []
        for reg in sorted(self.dirty):
            value = self.known.get(reg)
            source = str(value) if value is not None else f"x{reg}"
            lines.append(f"R[{reg}] = {source}")
        self.dirty.clear()
        return lines


def find_leaders(decoded, text_base: int, text_len: int, data: bytes) -> set[int]:
    """Indices that start a superblock.

    The union of: index 0, the successor of every control transfer, every
    in-text static branch/jump target, and every word-aligned text address
    found in the data section (jump-table case targets).
    """
    leaders: set[int] = {0} if text_len else set()
    for index in range(text_len):
        instr = decoded[index]
        m = instr.mnemonic
        if m not in CONTROL_TRANSFERS:
            continue
        if index + 1 < text_len:
            leaders.add(index + 1)
        if m in _BRANCHES:
            target = index + 1 + instr.imm
            if 0 <= target < text_len:
                leaders.add(target)
        elif m == "j" or m == "jal":
            pc = text_base + (index << 2)
            t_pc = ((pc + 4) & 0xF000_0000) | (instr.target << 2)
            target = (t_pc - text_base) >> 2
            if 0 <= target < text_len:
                leaders.add(target)
    text_end = text_base + (text_len << 2)
    for offset in range(0, len(data) - 3, 4):
        word = int.from_bytes(data[offset:offset + 4], "little")
        if not word & 3 and text_base <= word < text_end:
            leaders.add((word - text_base) >> 2)
    return leaders


class SuperblockTable:
    """Block structure + generated block functions for one :class:`Cpu`.

    Public surface used by the dispatch loop:

    * ``entries[index] -> (n, fn | None)`` -- suffix length and generated
      function for every handler slot (escape slots reuse the threaded
      escape handlers with length 1); ``fn is None`` marks a mid-block
      index nobody has jumped to yet.
    * :meth:`materialize` -- build the suffix block for such an index.
    * :meth:`reset` / :meth:`fold_into` -- zero the per-block counters at
      run start / fold their deltas into the per-instruction array.
    * :attr:`blocks` -- the leader partition, for introspection and the
      formation property tests.
    """

    def __init__(self, cpu) -> None:
        self._cpu = cpu
        self._decoded = cpu._decoded
        self._text_base = cpu.exe.text_base
        self._text_len = len(cpu._decoded)
        self._profile = cpu.profile
        self.leaders = find_leaders(
            self._decoded, self._text_base, self._text_len, cpu.exe.data
        )

        # suffix_len[i]: instructions from i to the end of i's block
        decoded = self._decoded
        leaders = self.leaders
        suffix = [1] * self._text_len
        for i in range(self._text_len - 2, -1, -1):
            if decoded[i].mnemonic in CONTROL_TRANSFERS or (i + 1) in leaders:
                suffix[i] = 1
            else:
                suffix[i] = suffix[i + 1] + 1
        self.suffix_len = suffix

        #: per-block entry counters / fold watermarks / (start, length)
        self.bcounts: list[int] = []
        self._folded: list[int] = []
        self.members: list[tuple[int, int]] = []

        handlers = cpu._handlers
        entries: list[tuple] = [(1, handlers[slot]) for slot in range(len(handlers))]
        for i in range(self._text_len):
            entries[i] = (suffix[i], None)
        self.entries = entries
        #: function-only view of ``entries`` for the budget-free dispatch
        #: spree (escape slots resolve to the raising threaded handlers),
        #: and the bound the spree sizing relies on
        self.fns: list = [entry[1] for entry in entries]
        self.max_block_len = max(suffix, default=1)

        memory = cpu.memory
        self._ns = {
            "R": cpu.regs,
            "T": cpu._taken,
            "BC": self.bcounts,
            "HL": cpu._hilo,
            "DE": cpu._dyn_edges,
            "r8": memory.read_u8,
            "r16": memory.read_u16,
            "r32": memory.read_u32,
            "w8": memory.write_u8,
            "w16": memory.write_u16,
            "w32": memory.write_u32,
            "Halt": _Halt,
            "Err": SimulationError,
        }
        self._build_leader_blocks()

    # -- public surface ----------------------------------------------------

    @property
    def blocks(self) -> list[tuple[int, int]]:
        """The leader partition as (start index, length), sorted."""
        return [(leader, self.suffix_len[leader]) for leader in sorted(self.leaders)]

    def reset(self) -> None:
        bcounts = self.bcounts
        folded = self._folded
        for i in range(len(bcounts)):
            bcounts[i] = 0
            folded[i] = 0

    def fold_into(self, counts: list[int]) -> None:
        """Fold per-block entry deltas into the per-instruction counters."""
        bcounts = self.bcounts
        folded = self._folded
        members = self.members
        for bid in range(len(bcounts)):
            delta = bcounts[bid] - folded[bid]
            if delta:
                folded[bid] = bcounts[bid]
                start, length = members[bid]
                for i in range(start, start + length):
                    counts[i] += delta

    def materialize(self, index: int) -> tuple:
        """Generate the suffix block for a dynamic jump to mid-block *index*."""
        bid = self._new_bid(index, self.suffix_len[index])
        source = "def _factory(R, T, BC, HL, DE, r8, r16, r32, w8, w16, w32, Halt, Err):\n"
        source += "\n".join(self._emit_function("_b", index, bid, "    ")) + "\n"
        source += "    return _b\n"
        namespace: dict = {}
        exec(compile(source, f"<superblock@{index}>", "exec"), namespace)
        entry = (self.suffix_len[index], namespace["_factory"](**self._ns))
        self.entries[index] = entry
        self.fns[index] = entry[1]
        return entry

    # -- construction ------------------------------------------------------

    def _new_bid(self, start: int, length: int) -> int:
        bid = len(self.members)
        self.members.append((start, length))
        self.bcounts.append(0)
        self._folded.append(0)
        return bid

    def _build_leader_blocks(self) -> None:
        """Generate one module containing a function per leader block."""
        lines = [
            "def _factory(R, T, BC, HL, DE, r8, r16, r32, w8, w16, w32, Halt, Err):",
            "    fns = {}",
        ]
        starts = sorted(self.leaders)
        for start in starts:
            bid = self._new_bid(start, self.suffix_len[start])
            lines.extend(self._emit_function(f"_b{start}", start, bid, "    "))
            lines.append(f"    fns[{start}] = _b{start}")
        lines.append("    return fns")
        source = "\n".join(lines) + "\n"
        namespace: dict = {}
        exec(compile(source, "<superblocks>", "exec"), namespace)
        fns = namespace["_factory"](**self._ns)
        for start, fn in fns.items():
            self.entries[start] = (self.suffix_len[start], fn)
            self.fns[start] = fn

    # -- code generation ---------------------------------------------------

    def _emit_function(self, name: str, start: int, bid: int, indent: str) -> list[str]:
        length = self.suffix_len[start]
        sequence = self._decoded[start:start + length]

        # cache a register in a block local when the block touches it more
        # than once; single-touch registers go straight to R (same cost)
        touches: Counter = Counter()
        for instr in sequence:
            for reg in _read_regs(instr):
                touches[reg] += 1
            target = _written_reg(instr)
            if target:
                touches[target] += 1
        env = _BlockEnv({reg for reg, n in touches.items() if n >= 2})

        lines = [f"{indent}def {name}():", f"{indent}    BC[{bid}] += 1"]
        body = indent + "    "
        for offset, instr in enumerate(sequence):
            m = instr.mnemonic
            if m in CONTROL_TRANSFERS:
                stmts = self._emit_terminator(instr, start + offset, env)
            else:
                # flush *before* emitting a faulting instruction, so the
                # write-backs cover only the instructions already executed
                # (this instruction's own write must not be flushed yet)
                flush = env.flush() if m in _MAY_FAULT else []
                emitted = self._emit_straightline(instr, env)
                stmts = env.take_pending() + flush + emitted
            lines.extend(body + stmt for stmt in stmts)
        if sequence[-1].mnemonic not in CONTROL_TRANSFERS:
            lines.extend(body + stmt for stmt in env.flush())
            lines.append(f"{body}return {start + length}")
        return lines

    def _addr(self, env: _BlockEnv, rs: int, imm: int) -> str:
        """Effective-address expression ``(R[rs] + imm) & M``, folded."""
        base, value = env.read(rs)
        if value is not None:
            return str((value + imm) & _MASK)
        if imm == 0:
            return base
        return f"({base} + {imm}) & {_M}"

    def _emit_straightline(self, instr, env: _BlockEnv) -> list[str]:
        """Statements for one non-control-transfer instruction.

        Mirrors the threaded executor closures exactly, including the
        "writes to $zero are dropped but their memory reads still happen"
        rule.  Returns relative-indented source lines; lazy register
        loads accumulate in ``env.pending``.
        """
        m = instr.mnemonic
        rs, rt, rd = instr.rs, instr.rt, instr.rd
        shamt, imm = instr.shamt, instr.imm

        if m == "addiu" or m == "addi":
            if not rt:
                return []
            a, av = env.read(rs)
            if av is not None:
                return env.write(rt, None, (av + imm) & _MASK)
            if imm == 0:
                return env.write(rt, a)
            return env.write(rt, f"({a} + {imm}) & {_M}")
        if m == "lw":
            address = self._addr(env, rs, imm)
            if rt:
                return env.write(rt, f"r32({address})")
            return [f"r32({address})"]
        if m == "sw":
            address = self._addr(env, rs, imm)
            return [f"w32({address}, {env.read(rt)[0]})"]
        if m in ("addu", "add", "subu", "sub", "and", "or", "xor", "nor",
                 "slt", "sltu"):
            if not rd:
                return []
            a, av = env.read(rs)
            b, bv = env.read(rt)
            both = av is not None and bv is not None
            if m == "addu" or m == "add":
                if both:
                    return env.write(rd, None, (av + bv) & _MASK)
                if av == 0:
                    return env.write(rd, b, bv)
                if bv == 0:
                    return env.write(rd, a, av)
                return env.write(rd, f"({a} + {b}) & {_M}")
            if m == "subu" or m == "sub":
                if both:
                    return env.write(rd, None, (av - bv) & _MASK)
                if bv == 0:
                    return env.write(rd, a, av)
                return env.write(rd, f"({a} - {b}) & {_M}")
            if m == "and":
                if both:
                    return env.write(rd, None, av & bv)
                if av == 0 or bv == 0:
                    return env.write(rd, None, 0)
                return env.write(rd, f"{a} & {b}")
            if m == "or":
                if both:
                    return env.write(rd, None, av | bv)
                if av == 0:
                    return env.write(rd, b, bv)
                if bv == 0:
                    return env.write(rd, a, av)
                return env.write(rd, f"{a} | {b}")
            if m == "xor":
                if both:
                    return env.write(rd, None, av ^ bv)
                if av == 0:
                    return env.write(rd, b, bv)
                if bv == 0:
                    return env.write(rd, a, av)
                return env.write(rd, f"{a} ^ {b}")
            if m == "nor":
                if both:
                    return env.write(rd, None, ~(av | bv) & _MASK)
                if av == 0:
                    return env.write(rd, f"~{b} & {_M}")
                if bv == 0:
                    return env.write(rd, f"~{a} & {_M}")
                return env.write(rd, f"~({a} | {b}) & {_M}")
            if m == "slt":
                if both:
                    return env.write(rd, None, int(_s32(av) < _s32(bv)))
                if bv == 0:
                    # signed(a) < 0  <=>  sign bit set
                    return env.write(rd, f"1 if {a} & 0x80000000 else 0")
                if av == 0:
                    # 0 < signed(b)  <=>  b in (0, 2^31)
                    return env.write(rd, f"1 if 0 < {b} < 0x80000000 else 0")
                return [
                    f"_a = {a}",
                    "if _a & 0x80000000:",
                    "    _a -= 0x100000000",
                    f"_b = {b}",
                    "if _b & 0x80000000:",
                    "    _b -= 0x100000000",
                ] + env.write(rd, "1 if _a < _b else 0")
            # sltu
            if both:
                return env.write(rd, None, int(av < bv))
            if bv == 0:
                return env.write(rd, None, 0)
            if av == 0:
                return env.write(rd, f"1 if {b} else 0")
            return env.write(rd, f"1 if {a} < {b} else 0")
        if m in ("sll", "srl", "sra", "sllv", "srlv", "srav"):
            if not rd:
                return []  # includes the canonical nop
            b, bv = env.read(rt)
            if m in ("sll", "srl", "sra"):
                if shamt == 0:
                    return env.write(rd, b, bv)
                if m == "sll":
                    if bv is not None:
                        return env.write(rd, None, (bv << shamt) & _MASK)
                    return env.write(rd, f"({b} << {shamt}) & {_M}")
                if m == "srl":
                    if bv is not None:
                        return env.write(rd, None, bv >> shamt)
                    return env.write(rd, f"{b} >> {shamt}")
                # sra
                if bv is not None:
                    return env.write(rd, None, (_s32(bv) >> shamt) & _MASK)
                return [
                    f"_v = {b}",
                    "if _v & 0x80000000:",
                    "    _v -= 0x100000000",
                ] + env.write(rd, f"(_v >> {shamt}) & {_M}")
            a, av = env.read(rs)
            if m == "sllv":
                if av is not None and bv is not None:
                    return env.write(rd, None, (bv << (av & 31)) & _MASK)
                return env.write(rd, f"({b} << ({a} & 31)) & {_M}")
            if m == "srlv":
                if av is not None and bv is not None:
                    return env.write(rd, None, bv >> (av & 31))
                return env.write(rd, f"{b} >> ({a} & 31)")
            # srav
            if av is not None and bv is not None:
                return env.write(rd, None, (_s32(bv) >> (av & 31)) & _MASK)
            return [
                f"_v = {b}",
                "if _v & 0x80000000:",
                "    _v -= 0x100000000",
            ] + env.write(rd, f"(_v >> ({a} & 31)) & {_M}")
        if m in ("slti", "sltiu", "andi", "ori", "xori", "lui"):
            if not rt:
                return []
            if m == "lui":
                return env.write(rt, None, (imm << 16) & _MASK)
            a, av = env.read(rs)
            if m == "slti":
                if av is not None:
                    return env.write(rt, None, int(_s32(av) < imm))
                return [
                    f"_a = {a}",
                    "if _a & 0x80000000:",
                    "    _a -= 0x100000000",
                ] + env.write(rt, f"1 if _a < {imm} else 0")
            if m == "sltiu":
                if av is not None:
                    return env.write(rt, None, int(av < (imm & _MASK)))
                return env.write(rt, f"1 if {a} < {imm & _MASK} else 0")
            if m == "andi":
                if av is not None:
                    return env.write(rt, None, av & imm)
                return env.write(rt, f"{a} & {imm}")
            if m == "ori":
                if av is not None:
                    return env.write(rt, None, av | imm)
                return env.write(rt, f"{a} | {imm}")
            # xori
            if av is not None:
                return env.write(rt, None, av ^ imm)
            return env.write(rt, f"{a} ^ {imm}")
        if m in ("lb", "lbu", "lh", "lhu"):
            reader = "r8" if m in ("lb", "lbu") else "r16"
            address = self._addr(env, rs, imm)
            if not rt:
                return [f"{reader}({address})"]
            if m == "lb":
                return [f"_v = r8({address})"] + env.write(
                    rt, f"(_v - 0x100 if _v & 0x80 else _v) & {_M}"
                )
            if m == "lbu":
                return env.write(rt, f"r8({address})")
            if m == "lh":
                return [f"_v = r16({address})"] + env.write(
                    rt, f"(_v - 0x10000 if _v & 0x8000 else _v) & {_M}"
                )
            return env.write(rt, f"r16({address})")  # lhu
        if m == "sb":
            return [f"w8({self._addr(env, rs, imm)}, {env.read(rt)[0]})"]
        if m == "sh":
            return [f"w16({self._addr(env, rs, imm)}, {env.read(rt)[0]})"]
        if m == "mult":
            return [
                f"_a = {env.read(rs)[0]}",
                "if _a & 0x80000000:",
                "    _a -= 0x100000000",
                f"_b = {env.read(rt)[0]}",
                "if _b & 0x80000000:",
                "    _b -= 0x100000000",
                "_p = (_a * _b) & 0xFFFFFFFFFFFFFFFF",
                f"HL[0] = (_p >> 32) & {_M}",
                f"HL[1] = _p & {_M}",
            ]
        if m == "multu":
            return [
                f"_p = {env.read(rs)[0]} * {env.read(rt)[0]}",
                f"HL[0] = (_p >> 32) & {_M}",
                f"HL[1] = _p & {_M}",
            ]
        if m == "div":
            return [
                f"_a = {env.read(rs)[0]}",
                "if _a & 0x80000000:",
                "    _a -= 0x100000000",
                f"_b = {env.read(rt)[0]}",
                "if _b & 0x80000000:",
                "    _b -= 0x100000000",
                "if _b == 0:",
                # MIPS leaves HI/LO undefined; match the other engines
                f"    HL[0] = _a & {_M}",
                f"    HL[1] = {_M}",
                "else:",
                "    _q = int(_a / _b)",  # C-style truncation toward zero
                f"    HL[0] = (_a - _q * _b) & {_M}",
                f"    HL[1] = _q & {_M}",
            ]
        if m == "divu":
            return [
                f"_a = {env.read(rs)[0]}",
                f"_b = {env.read(rt)[0]}",
                "if _b == 0:",
                "    HL[0] = _a",
                f"    HL[1] = {_M}",
                "else:",
                "    HL[0] = _a % _b",
                "    HL[1] = _a // _b",
            ]
        if m == "mfhi":
            return env.write(rd, "HL[0]") if rd else []
        if m == "mflo":
            return env.write(rd, "HL[1]") if rd else []
        if m == "mthi":
            return [f"HL[0] = {env.read(rs)[0]}"]
        if m == "mtlo":
            return [f"HL[1] = {env.read(rs)[0]}"]
        raise SimulationError(f"unimplemented mnemonic {m}")  # pragma: no cover

    def _emit_terminator(self, instr, idx: int, env: _BlockEnv) -> list[str]:
        """Statements for a control transfer; every path ends in return/raise.

        Terminators flush the deferred register write-backs themselves:
        branches and jumps before their condition/return, ``jr``/``jalr``
        after the link write but before the target check (whose failure
        aborts the run exactly like the threaded engine, registers fully
        written), ``break``/``syscall`` before raising.
        """
        m = instr.mnemonic
        pc = self._text_base + (idx << 2)
        nxt = idx + 1

        if m in _BRANCHES:
            t_pc = pc + 4 + (instr.imm << 2)
            t_idx = (t_pc - self._text_base) >> 2
            if not 0 <= t_idx < self._text_len:
                # same escape slot the threaded table uses: executing it
                # raises, and if the step budget runs out first the caller
                # sees the same "exceeded max_steps" the threaded loop does
                t_idx = self._cpu._escape_slots[t_pc]
            a, av = env.read(instr.rs)
            prelude: list[str] = []
            if m == "beq" or m == "bne":
                b, bv = env.read(instr.rt)
                if av is not None and bv is not None:
                    taken = av == bv if m == "beq" else av != bv
                    cond = "if True:" if taken else "if False:"
                else:
                    cond = f"if {a} == {b}:" if m == "beq" else f"if {a} != {b}:"
            elif av is not None:
                signed = _s32(av)
                taken = {
                    "blez": signed <= 0, "bgtz": signed > 0,
                    "bltz": signed < 0, "bgez": signed >= 0,
                }[m]
                cond = "if True:" if taken else "if False:"
            elif m == "blez":
                prelude = [f"_v = {a}"]
                cond = "if _v == 0 or _v & 0x80000000:"
            elif m == "bgtz":
                prelude = [f"_v = {a}"]
                cond = "if _v != 0 and not _v & 0x80000000:"
            elif m == "bltz":
                cond = f"if {a} & 0x80000000:"
            else:  # bgez
                cond = f"if not {a} & 0x80000000:"
            return env.take_pending() + env.flush() + prelude + [
                cond,
                f"    T[{idx}] += 1",
                f"    return {t_idx}",
                f"return {nxt}",
            ]

        if m == "j" or m == "jal":
            t_pc = ((pc + 4) & 0xF000_0000) | (instr.target << 2)
            t_idx = (t_pc - self._text_base) >> 2
            if not 0 <= t_idx < self._text_len:
                t_idx = self._cpu._escape_slots[t_pc]
            lines = []
            if m == "jal":
                lines.extend(env.write(31, None, pc + 4))
            return lines + env.flush() + [f"return {t_idx}"]

        if m == "jr" or m == "jalr":
            lines = []
            if m == "jalr" and instr.rd:
                # link is written before the target register is read, so
                # `jalr $t0, $t0` jumps to the link address -- exactly what
                # the threaded closure and the reference interpreter do
                lines.extend(env.write(instr.rd, None, pc + 4))
            target, _ = env.read(instr.rs)
            lines = env.take_pending() + lines + [f"_t = {target}"] + env.flush() + [
                f"_i = (_t - {self._text_base}) >> 2",
                f"if _t & 3 or not 0 <= _i < {self._text_len}:",
                '    raise Err("pc outside text section: 0x%08x" % _t)',
            ]
            if self._profile:
                lines += [
                    f"_k = ({pc}, _t)",
                    "DE[_k] = DE.get(_k, 0) + 1",
                ]
            lines.append("return _i")
            return lines

        if m == "break":
            return env.flush() + [f"raise Halt({idx})"]
        if m == "syscall":
            message = f"syscall executed at 0x{pc:08x}; benchmarks are I/O-free"
            return env.flush() + [f"raise Err({message!r})"]
        raise SimulationError(f"unimplemented mnemonic {m}")  # pragma: no cover
