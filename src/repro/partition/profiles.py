"""Mapping simulator profiles onto recovered loops.

The paper's partitioner runs off "profiling results [identifying] the most
frequent few loops".  The simulator gives per-address execution counts and
taken-edge counts on the *original* binary; decompiled blocks keep their
original start addresses, so counts transfer directly onto the recovered
CDFG: a loop's software cost is the cycle-weighted sum of its body's
address range, its iteration count is the sum of back-edge counts into the
header, and its invocation count is header executions minus back entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.binary.image import Executable
from repro.decompile.decompiler import DecompiledFunction, DecompiledProgram
from repro.isa.encoding import decode
from repro.sim.cpu import CpiModel, RunResult, _MNEMONIC_CLASS


@dataclass
class LoopProfile:
    """Software execution profile of one recovered natural loop."""

    function: str
    header_address: int
    depth: int
    block_starts: list[int]
    sw_cycles: int = 0
    iterations: int = 0
    invocations: int = 0
    block_counts: dict[int, int] = field(default_factory=dict)

    @property
    def key(self) -> tuple[str, int]:
        return (self.function, self.header_address)


@dataclass
class ProgramProfile:
    """Whole-program profile plus per-loop attribution."""

    total_cycles: int
    total_instructions: int
    loops: dict[tuple[str, int], LoopProfile] = field(default_factory=dict)

    def hot_loops(self) -> list[LoopProfile]:
        """Loops sorted by software cycles, hottest first."""
        return sorted(self.loops.values(), key=lambda lp: -lp.sw_cycles)


def _per_address_cycles(
    exe: Executable, result: RunResult, cpi: CpiModel
) -> dict[int, int]:
    """CPU cycles attributable to each instruction address."""
    taken_from: dict[int, int] = {}
    for (src, _dst), count in result.edge_counts.items():
        taken_from[src] = taken_from.get(src, 0) + count
    cycles: dict[int, int] = {}
    for index, word in enumerate(exe.text_words):
        pc = exe.text_base + 4 * index
        count = result.pc_counts.get(pc, 0)
        if count == 0:
            continue
        mnemonic = decode(word).mnemonic
        klass = _MNEMONIC_CLASS[mnemonic]
        total = count * cpi.cycles_for(klass)
        if klass == "branch":
            total += cpi.taken_penalty * taken_from.get(pc, 0)
        cycles[pc] = total
    return cycles


def _block_ranges(func: DecompiledFunction, exe: Executable) -> dict[int, tuple[int, int]]:
    """Original [start, end) address range of each block, by block index."""
    starts = sorted(block.start for block in func.cfg.blocks)
    _, func_end = exe.function_bounds(func.name)
    ranges: dict[int, tuple[int, int]] = {}
    for block in func.cfg.blocks:
        later = [s for s in starts if s > block.start]
        end = min(later) if later else func_end
        ranges[block.index] = (block.start, end)
    return ranges


def build_profile(
    exe: Executable,
    program: DecompiledProgram,
    result: RunResult,
    cpi: CpiModel | None = None,
) -> ProgramProfile:
    """Attribute the run's cycles to each recovered loop."""
    cpi = cpi or CpiModel()
    cycles_at = _per_address_cycles(exe, result, cpi)
    profile = ProgramProfile(
        total_cycles=result.cycles, total_instructions=result.steps
    )

    for func in program.functions.values():
        ranges = _block_ranges(func, exe)
        for loop in func.loops:
            header = func.cfg.blocks[loop.header]
            body_ranges = [ranges[index] for index in loop.body]
            sw_cycles = 0
            block_counts: dict[int, int] = {}
            for start, end in body_ranges:
                pc = start
                while pc < end:
                    sw_cycles += cycles_at.get(pc, 0)
                    pc += 4
                block_counts[start] = result.pc_counts.get(start, 0)
            back_edges = 0
            for (src, dst), count in result.edge_counts.items():
                if dst != header.start:
                    continue
                if any(start <= src < end for start, end in body_ranges):
                    back_edges += count
            header_count = result.pc_counts.get(header.start, 0)
            loop_profile = LoopProfile(
                function=func.name,
                header_address=header.start,
                depth=loop.depth,
                block_starts=[func.cfg.blocks[i].start for i in sorted(loop.body)],
                sw_cycles=sw_cycles,
                iterations=back_edges,
                invocations=max(0, header_count - back_edges),
                block_counts=block_counts,
            )
            profile.loops[loop_profile.key] = loop_profile
    return profile
