"""Baseline partitioners (the approaches the paper considered and rejected).

The paper cites Henkel'99 (simulated annealing, low power) and
Kalavade & Lee'94 (GCLP) as "standard hardware/software partitioning
approaches" it chose not to use in favour of the fast 90-10 heuristic.

These entry points are now thin shims over the pass pipeline
(:mod:`repro.partition.api`): each runs its algorithm's
:class:`~repro.partition.placement.PlacementPass` on the legacy
two-device view (CPU + one monolithic fabric carrying the full budget)
and reproduces the pre-refactor results bit-identically -- see
``tests/partition/test_legacy_shim.py``.  New code should call
:func:`repro.partition.api.partition` directly with an explicit device
list.
"""

from __future__ import annotations

from repro.partition.api import default_passes, legacy_devices, partition
from repro.partition.estimator import Candidate
from repro.partition.placement import (
    AnnealingPlacement,
    ExhaustivePlacement,
    GclpPlacement,
    GreedyPlacement,
    PlacementPass,
)
from repro.partition.result import PartitionResult
from repro.platform.platform import Platform


def _run_legacy(
    platform: Platform,
    candidates: list[Candidate],
    total_cycles: int,
    placement: PlacementPass,
) -> PartitionResult:
    outcome = partition(
        candidates,
        legacy_devices(platform),
        platform=platform,
        total_cycles=total_cycles,
        passes=default_passes(placement, legacy=True),
    )
    return outcome.result


def greedy_partition(
    platform: Platform, candidates: list[Candidate], total_cycles: int
) -> PartitionResult:
    """Greedy by time-saved per gate (classic knapsack value density)."""
    return _run_legacy(platform, candidates, total_cycles, GreedyPlacement())


def exhaustive_partition(
    platform: Platform,
    candidates: list[Candidate],
    total_cycles: int,
    max_candidates: int = 14,
) -> PartitionResult:
    """Optimal subset by estimated application time (reference, small n)."""
    return _run_legacy(
        platform, candidates, total_cycles,
        ExhaustivePlacement(max_candidates=max_candidates),
    )


def gclp_partition(
    platform: Platform, candidates: list[Candidate], total_cycles: int
) -> PartitionResult:
    """GCLP-style partitioner after Kalavade & Lee (1994)."""
    return _run_legacy(platform, candidates, total_cycles, GclpPlacement())


def annealing_partition(
    platform: Platform,
    candidates: list[Candidate],
    total_cycles: int,
    iterations: int = 4000,
    seed: int = 12345,
) -> PartitionResult:
    """Simulated annealing after Henkel (1999), deterministic via seed."""
    return _run_legacy(
        platform, candidates, total_cycles,
        AnnealingPlacement(iterations=iterations, seed=seed),
    )
