"""The partitioning pass-manager: ordered, named, observable passes.

A partitioning run is a compiler-style pipeline over the
:class:`~repro.partition.graph.PartitionGraph`:

    filter -> annotate -> <placement> -> legalize -> report

Each pass is timed individually (``partition.pass_seconds`` histogram plus
the per-pipeline ``pass_seconds`` dict on the report -- the legacy code
recorded one ``perf_counter()`` delta for the whole partitioner, invisible
to obs), wrapped in an obs span, and counted on
``partition.pass_runs_total``.  Placement algorithms are just passes too
(:mod:`repro.partition.placement`); anything that mutates the graph can be
inserted into the list.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro import obs
from repro.partition import legalize as _legalize
from repro.partition.costmodels import device_cost
from repro.partition.graph import PartitionGraph, PartitionNode


class PartitionPass:
    """Base class: one named transformation of the partition graph."""

    #: stable pass name (obs span/counter suffix, ``--passes`` CLI token)
    name = "pass"

    def run(self, graph: PartitionGraph) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class FilterPass(PartitionPass):
    """Prune candidates no hardware device could ever hold.

    The default predicate keeps a node if its raw kernel area fits at
    least one non-CPU device; pass ``predicate=None`` (keep everything)
    to reproduce the legacy algorithms, which carried infeasible
    candidates through and rejected them at selection time.
    """

    name = "filter"

    KEEP_ALL = staticmethod(lambda graph, node: True)

    def __init__(
        self,
        predicate: Callable[[PartitionGraph, PartitionNode], bool] | None = None,
    ):
        self.predicate = predicate or self._fits_somewhere

    @staticmethod
    def _fits_somewhere(graph: PartitionGraph, node: PartitionNode) -> bool:
        # asks the cost-model registry, not the raw kernel area: a kernel
        # too big for any fabric region may still pack onto a CGRA slot
        return any(
            device_cost(graph.platform, device, node.candidate).area_gates
            <= device.capacity_gates
            for device in graph.hw_devices
        )

    def run(self, graph: PartitionGraph) -> None:
        pruned = 0
        for node in graph.nodes:
            if not self.predicate(graph, node):
                node.pruned = True
                pruned += 1
        if pruned:
            obs.counter("partition.nodes_pruned_total").inc(pruned)


class AnnotatePass(PartitionPass):
    """Fill per-device cost annotations from the cost-model registry."""

    name = "annotate"

    def run(self, graph: PartitionGraph) -> None:
        for node in graph.nodes:
            for device in graph.devices:
                node.costs[device.name] = device_cost(
                    graph.platform, device, node.candidate
                )


class LegalizePass(PartitionPass):
    """Validate per-device capacity and overlaps; repair if violated.

    The one shared budget/overlap check every placement algorithm runs
    through (previously three divergent copies).  Feasible placements pass
    through untouched; infeasible ones are repaired by the legacy policy
    (keep by descending saved seconds, drop the rest to software).
    """

    name = "legalize"

    def run(self, graph: PartitionGraph) -> None:
        if _legalize.graph_feasible(graph):
            return
        dropped = _legalize.repair_graph(graph)
        if dropped:
            obs.counter("partition.legalize_drops_total").inc(dropped)


class ReportPass(PartitionPass):
    """Publish placement totals to obs (counters + per-device gauges)."""

    name = "report"

    def run(self, graph: PartitionGraph) -> None:
        if not obs.metrics_enabled():
            return
        obs.counter("partition.nodes_total").inc(len(graph.nodes))
        obs.counter("partition.nodes_placed_total").inc(len(graph.placed()))
        for device in graph.hw_devices:
            obs.gauge(f"partition.area_used.{device.name}").set(
                graph.area_used(device)
            )


@dataclass
class PipelineReport:
    """What the pass-manager observed while running one pipeline."""

    #: pass name -> wall-clock seconds, in run order (py3.7+ dicts are
    #: ordered); repeated pass names accumulate
    pass_seconds: dict[str, float] = field(default_factory=dict)
    passes_run: int = 0

    @property
    def total_seconds(self) -> float:
        return sum(self.pass_seconds.values())


class PassManager:
    """Runs an ordered pass list over a graph, timing and tracing each."""

    def __init__(self, passes: list[PartitionPass]):
        self.passes = list(passes)

    @property
    def pass_names(self) -> list[str]:
        return [p.name for p in self.passes]

    def run(self, graph: PartitionGraph) -> PipelineReport:
        report = PipelineReport()
        histogram = obs.histogram("partition.pass_seconds")
        runs = obs.counter("partition.pass_runs_total")
        for pipeline_pass in self.passes:
            name = pipeline_pass.name
            started = time.perf_counter()
            with obs.span(f"partition.pass.{name}"):
                pipeline_pass.run(graph)
            elapsed = time.perf_counter() - started
            report.pass_seconds[name] = (
                report.pass_seconds.get(name, 0.0) + elapsed
            )
            report.passes_run += 1
            histogram.observe(elapsed)
            runs.inc()
            obs.counter(f"partition.pass.{name}.runs_total").inc()
        return report
