"""The partitioning result type, shared by every algorithm and the shims.

Historically defined in :mod:`repro.partition.ninety_ten` (which still
re-exports it); it moved here so the pass pipeline, the baselines and the
90-10 shim can all build one without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.partition.estimator import Candidate
    from repro.partition.graph import PartitionGraph


@dataclass
class PartitionResult:
    selected: list["Candidate"] = field(default_factory=list)
    area_used: float = 0.0
    area_budget: float = 0.0
    partitioning_seconds: float = 0.0
    algorithm: str = "90-10"
    #: which step chose each kernel (1 = hot loops, 2 = alias coupling,
    #: 3 = greedy fill), by candidate name
    step_of: dict[str, int] = field(default_factory=dict)
    #: node -> device-name map covering *every* candidate ("cpu" = software);
    #: empty when produced by a pre-pipeline code path
    placements: dict[str, str] = field(default_factory=dict)
    #: wall-clock seconds of each pipeline pass, in run order (the legacy
    #: one-delta-per-partitioner timing split out per pass)
    pass_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def names(self) -> list[str]:
        return [candidate.name for candidate in self.selected]


def result_from_graph(
    graph: "PartitionGraph", algorithm: str, seconds: float,
    pass_seconds: dict[str, float] | None = None,
) -> PartitionResult:
    """Fold a placed graph into the legacy result shape.

    ``selected`` keeps the placement order the algorithm chose (the legacy
    partitioners' selection order), and ``area_used`` is summed in that
    order so the float bits match the legacy accumulation exactly.
    """
    placed = [graph.nodes[i] for i in graph.placement_order]
    result = PartitionResult(
        selected=[node.candidate for node in placed],
        area_used=sum(node.area_on(node.device) for node in placed),
        area_budget=sum(d.capacity_gates for d in graph.hw_devices),
        partitioning_seconds=seconds,
        algorithm=algorithm,
        placements=graph.assignment(),
        pass_seconds=dict(pass_seconds or {}),
    )
    for node in placed:
        result.step_of[node.name] = node.step
    return result
