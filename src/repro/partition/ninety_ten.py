"""The paper's three-step 90-10 partitioning algorithm (section 3).

    "Our partitioning algorithm proceeds in three steps.  In the first
    step, we use profiling results to identify the most frequent few
    loops, which generally correspond to 90 percent of execution ...  In
    the second step, we use alias information to find regions of code that
    access the same memory locations as the loops in the hardware
    partition ...  In the third step, we continue to add regions to the
    hardware partition based on profiling results and hardware suitability
    until the area constraint is violated."

The deliberate simplicity (greedy, no search) is the point: the paper
chooses it over classic partitioners [Henkel'99, Kalavade-Lee'94] to keep
partitioning time small enough for dynamic (run-time) use.  The ablation
benchmark compares quality and runtime against those baselines.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.partition.estimator import Candidate
from repro.platform.platform import Platform


@dataclass
class PartitionResult:
    selected: list[Candidate] = field(default_factory=list)
    area_used: float = 0.0
    area_budget: float = 0.0
    partitioning_seconds: float = 0.0
    algorithm: str = "90-10"
    #: which step chose each kernel (1 = hot loops, 2 = alias coupling,
    #: 3 = greedy fill), by candidate name
    step_of: dict[str, int] = field(default_factory=dict)

    @property
    def names(self) -> list[str]:
        return [candidate.name for candidate in self.selected]


@dataclass(frozen=True)
class NinetyTenOptions:
    hot_fraction: float = 0.90   # the "90" of 90-10
    max_hot_loops: int = 8       # "the most frequent few loops"
    min_local_speedup: float = 1.0


class NinetyTenPartitioner:
    def __init__(self, platform: Platform, options: NinetyTenOptions | None = None):
        self.platform = platform
        self.options = options or NinetyTenOptions()

    def partition(self, candidates: list[Candidate], total_cycles: int) -> PartitionResult:
        start_time = time.perf_counter()
        budget = self.platform.capacity_gates
        result = PartitionResult(area_budget=budget, algorithm="90-10")

        def fits(candidate: Candidate) -> bool:
            return result.area_used + candidate.area <= budget

        def conflicts(candidate: Candidate) -> bool:
            return any(candidate.overlaps(chosen) for chosen in result.selected)

        def select(candidate: Candidate, step: int) -> None:
            result.selected.append(candidate)
            result.area_used += candidate.area
            result.step_of[candidate.name] = step

        # --- step 1: the most frequent few loops (~90% of execution) -----
        # Hot loops are ranked by software cycles; for each hot loop the
        # best *granularity* within its nest (outer vs inner) is the family
        # member that saves the most time -- e.g. a pipelinable inner loop
        # usually beats its enclosing outer loop.
        ranked = sorted(candidates, key=lambda c: -c.profile.sw_cycles)
        covered = 0
        for candidate in ranked:
            if covered >= self.options.hot_fraction * total_cycles:
                break
            if len(result.selected) >= self.options.max_hot_loops:
                break
            if conflicts(candidate) or not fits(candidate):
                continue
            family = [c for c in ranked if c is candidate or c.overlaps(candidate)]
            family = [c for c in family if not conflicts(c) and fits(c)]
            if not family:
                continue
            best = max(family, key=lambda c: c.saved_seconds)
            if best.local_speedup <= self.options.min_local_speedup:
                continue
            select(best, step=1)
            covered += best.profile.sw_cycles

        # --- step 2: alias-coupled regions -------------------------------
        selected_symbols: set[str] = set()
        for candidate in result.selected:
            footprint = candidate.function.loop_footprints.get(
                candidate.profile.header_address
            )
            if footprint is not None:
                selected_symbols |= footprint.symbols
        for candidate in ranked:
            if conflicts(candidate) or not fits(candidate):
                continue
            footprint = candidate.function.loop_footprints.get(
                candidate.profile.header_address
            )
            if footprint is None or not footprint.symbols:
                continue
            if footprint.symbols & selected_symbols:
                if candidate.local_speedup > self.options.min_local_speedup:
                    select(candidate, step=2)
                    selected_symbols |= footprint.symbols

        # --- step 3: greedy fill by profile x suitability ------------------
        remaining = [c for c in ranked if not conflicts(c)]
        remaining.sort(key=lambda c: -(c.profile.sw_cycles * max(0.0, c.local_speedup)))
        for candidate in remaining:
            if conflicts(candidate):
                continue
            if not fits(candidate):
                continue  # paper: "until the area constraint is violated"
            if candidate.saved_seconds <= 0:
                continue
            select(candidate, step=3)

        result.partitioning_seconds = time.perf_counter() - start_time
        return result
