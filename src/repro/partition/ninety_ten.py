"""The paper's three-step 90-10 partitioning algorithm (section 3).

    "Our partitioning algorithm proceeds in three steps.  In the first
    step, we use profiling results to identify the most frequent few
    loops, which generally correspond to 90 percent of execution ...  In
    the second step, we use alias information to find regions of code that
    access the same memory locations as the loops in the hardware
    partition ...  In the third step, we continue to add regions to the
    hardware partition based on profiling results and hardware suitability
    until the area constraint is violated."

The algorithm itself lives in
:class:`repro.partition.placement.NinetyTenPlacement`; this module keeps
the legacy two-device API (:class:`NinetyTenPartitioner`) as a shim over
the pass pipeline, reproducing pre-refactor results bit-identically (see
``tests/partition/test_legacy_shim.py``).  ``PartitionResult`` and
``NinetyTenOptions`` are re-exported from their new homes so existing
imports -- and pickled flow caches -- keep resolving.
"""

from __future__ import annotations

from repro.partition.api import default_passes, legacy_devices, partition
from repro.partition.estimator import Candidate
from repro.partition.placement import NinetyTenOptions, NinetyTenPlacement
from repro.partition.result import PartitionResult
from repro.platform.platform import Platform

__all__ = ["NinetyTenOptions", "NinetyTenPartitioner", "PartitionResult"]


class NinetyTenPartitioner:
    def __init__(self, platform: Platform, options: NinetyTenOptions | None = None):
        self.platform = platform
        self.options = options or NinetyTenOptions()

    def partition(
        self, candidates: list[Candidate], total_cycles: int
    ) -> PartitionResult:
        outcome = partition(
            candidates,
            legacy_devices(self.platform),
            platform=self.platform,
            total_cycles=total_cycles,
            passes=default_passes(
                NinetyTenPlacement(self.options), legacy=True
            ),
        )
        return outcome.result
