"""Hardware/software partitioning (paper section 3), as a pass pipeline.

* :mod:`profiles` -- maps simulator profiling results onto recovered loops
  (execution cycles, iterations, invocations per loop),
* :mod:`estimator` -- builds candidate hardware regions by synthesizing
  every profiled loop,
* :mod:`graph` -- the partitioning IR: candidates as nodes with per-device
  cost annotations, overlap/alias edges,
* :mod:`costmodels` -- the per-device cost-model registry (CPU, fabric,
  CGRA; extensible by kind),
* :mod:`passes` -- the pass-manager and the standard passes (filter,
  annotate, legalize, report), each timed and traced,
* :mod:`placement` -- placement algorithms as interchangeable passes: the
  paper's three-step 90-10 heuristic plus greedy, GCLP, annealing and the
  exhaustive reference,
* :mod:`legalize` -- the one shared budget/overlap validation and repair,
* :mod:`api` -- the single entry point :func:`partition`,
* :mod:`ninety_ten` / :mod:`baselines` -- the legacy two-device API, kept
  as bit-identical shims over the pipeline.
"""

from repro.partition.api import (
    PartitionOutcome,
    default_passes,
    legacy_devices,
    partition,
)
from repro.partition.baselines import (
    annealing_partition,
    exhaustive_partition,
    gclp_partition,
    greedy_partition,
)
from repro.partition.costmodels import (
    CostModel,
    DeviceCost,
    cost_model_for,
    device_cost,
    register_cost_model,
)
from repro.partition.estimator import Candidate, build_candidates
from repro.partition.graph import (
    PartitionEdge,
    PartitionGraph,
    PartitionNode,
    build_graph,
)
from repro.partition.ninety_ten import NinetyTenPartitioner
from repro.partition.passes import (
    AnnotatePass,
    FilterPass,
    LegalizePass,
    PartitionPass,
    PassManager,
    ReportPass,
)
from repro.partition.placement import (
    PLACEMENTS,
    AnnealingPlacement,
    ExhaustivePlacement,
    GclpPlacement,
    GreedyPlacement,
    NinetyTenOptions,
    NinetyTenPlacement,
    PlacementPass,
)
from repro.partition.profiles import LoopProfile, ProgramProfile, build_profile
from repro.partition.result import PartitionResult, result_from_graph

__all__ = [
    "AnnealingPlacement",
    "AnnotatePass",
    "Candidate",
    "CostModel",
    "DeviceCost",
    "ExhaustivePlacement",
    "FilterPass",
    "GclpPlacement",
    "GreedyPlacement",
    "LegalizePass",
    "LoopProfile",
    "NinetyTenOptions",
    "NinetyTenPartitioner",
    "NinetyTenPlacement",
    "PLACEMENTS",
    "PartitionEdge",
    "PartitionGraph",
    "PartitionNode",
    "PartitionOutcome",
    "PartitionPass",
    "PartitionResult",
    "PassManager",
    "PlacementPass",
    "ProgramProfile",
    "annealing_partition",
    "build_candidates",
    "build_graph",
    "build_profile",
    "cost_model_for",
    "default_passes",
    "device_cost",
    "exhaustive_partition",
    "gclp_partition",
    "greedy_partition",
    "legacy_devices",
    "partition",
    "register_cost_model",
    "result_from_graph",
]
