"""Hardware/software partitioning (paper section 3).

* :mod:`profiles` -- maps simulator profiling results onto recovered loops
  (execution cycles, iterations, invocations per loop),
* :mod:`estimator` -- builds candidate hardware regions by synthesizing
  every profiled loop,
* :mod:`ninety_ten` -- the paper's three-step 90-10 partitioner: hot loops
  first, alias-coupled regions second, greedy fill third,
* :mod:`baselines` -- alternative partitioners (greedy value-density,
  exhaustive reference, GCLP-style, simulated annealing) used to reproduce
  the paper's argument for choosing the simple fast heuristic.
"""

from repro.partition.profiles import LoopProfile, ProgramProfile, build_profile
from repro.partition.estimator import Candidate, build_candidates
from repro.partition.ninety_ten import NinetyTenPartitioner, PartitionResult
from repro.partition.baselines import (
    exhaustive_partition,
    gclp_partition,
    greedy_partition,
    annealing_partition,
)

__all__ = [
    "Candidate",
    "LoopProfile",
    "NinetyTenPartitioner",
    "PartitionResult",
    "ProgramProfile",
    "annealing_partition",
    "build_candidates",
    "build_profile",
    "exhaustive_partition",
    "gclp_partition",
    "greedy_partition",
]
