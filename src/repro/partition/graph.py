"""The partitioning IR: candidate kernels as nodes, structure as edges.

The pass-manager operates on this graph, never on raw candidate lists:

* **nodes** -- one per candidate hardware region, annotated with per-device
  :class:`~repro.partition.costmodels.DeviceCost` entries and (after
  placement) the chosen device name,
* **overlap edges** -- two candidates share blocks (nested loops); they can
  never both be implemented,
* **alias edges** -- two candidates touch the same memory symbols (from the
  decompiler's loop footprints); the 90-10 algorithm's step 2 pulls
  alias-coupled regions into hardware together.

``graph.assignment()`` is the product: a *total* node -> device map (every
node lands somewhere; the CPU is the fallback), which the legalize pass
keeps inside every device's capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.partition.costmodels import DeviceCost
from repro.platform.devices import DeviceSpec

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.partition.estimator import Candidate
    from repro.platform.platform import Platform

OVERLAP = "overlap"
ALIAS = "alias"


@dataclass
class PartitionNode:
    """One candidate kernel in the partition graph."""

    candidate: "Candidate"
    #: device name -> implementation cost (filled by the annotate pass)
    costs: dict[str, DeviceCost] = field(default_factory=dict)
    #: where placement put this node (None until a placement pass ran;
    #: "cpu" means stay in software)
    device: str | None = None
    #: which algorithm step chose the node (90-10's 1/2/3; 0 otherwise)
    step: int = 0
    #: set by the filter pass: excluded from placement (stays software)
    pruned: bool = False

    @property
    def name(self) -> str:
        return self.candidate.name

    def cost_on(self, device: DeviceSpec | str) -> DeviceCost:
        name = device if isinstance(device, str) else device.name
        return self.costs[name]

    def saved_on(self, device: DeviceSpec | str) -> float:
        """Seconds saved by implementing this node on *device* vs the CPU.

        Falls back to the candidate's build-time estimate when annotations
        are absent (the estimator computed the same arithmetic)."""
        name = device if isinstance(device, str) else device.name
        cost = self.costs.get(name)
        cpu = self.costs.get("cpu")
        if cost is None or cpu is None:
            return self.candidate.saved_seconds
        return cpu.seconds - cost.seconds

    def area_on(self, device: DeviceSpec | str) -> float:
        name = device if isinstance(device, str) else device.name
        cost = self.costs.get(name)
        if cost is None:
            return self.candidate.area
        return cost.area_gates


@dataclass(frozen=True)
class PartitionEdge:
    """An undirected relation between two nodes (by node index)."""

    kind: str   # OVERLAP | ALIAS
    a: int
    b: int
    #: shared memory symbols (alias edges only)
    symbols: frozenset[str] = frozenset()


@dataclass
class PartitionGraph:
    """Everything one partitioning decision needs, in one place."""

    platform: "Platform"
    devices: tuple[DeviceSpec, ...]
    total_cycles: int
    nodes: list[PartitionNode] = field(default_factory=list)
    edges: list[PartitionEdge] = field(default_factory=list)
    #: node indices in the order placement chose them -- the legacy
    #: partitioners' selection order, preserved so the two-device shim's
    #: ``PartitionResult.selected`` matches bit-for-bit
    placement_order: list[int] = field(default_factory=list)

    def place(self, index: int, device: DeviceSpec | str, step: int = 0) -> None:
        """Record one placement decision (appends to the placement order)."""
        node = self.nodes[index]
        node.device = device if isinstance(device, str) else device.name
        node.step = step
        self.placement_order.append(index)

    def unplace(self, index: int) -> None:
        """Drop a node back to software (used by legalization repair)."""
        node = self.nodes[index]
        node.device = None
        node.step = 0
        if index in self.placement_order:
            self.placement_order.remove(index)

    @property
    def cpu(self) -> DeviceSpec:
        for device in self.devices:
            if device.is_cpu:
                return device
        raise ValueError("device list has no CPU entry")

    @property
    def hw_devices(self) -> tuple[DeviceSpec, ...]:
        """Placement targets other than the CPU, in declaration order."""
        return tuple(d for d in self.devices if not d.is_cpu)

    def device_named(self, name: str) -> DeviceSpec:
        for device in self.devices:
            if device.name == name:
                return device
        raise KeyError(name)

    def edges_of(self, index: int, kind: str | None = None) -> list[PartitionEdge]:
        return [
            e for e in self.edges
            if index in (e.a, e.b) and (kind is None or e.kind == kind)
        ]

    def assignment(self) -> dict[str, str]:
        """Total node -> device-name map; unplaced nodes are software."""
        return {
            node.name: node.device if node.device is not None else "cpu"
            for node in self.nodes
        }

    def placed(self, device: DeviceSpec | str | None = None) -> list[PartitionNode]:
        """Nodes placed on *device* (default: on any non-CPU device)."""
        if device is None:
            return [
                n for n in self.nodes
                if n.device is not None and n.device != "cpu"
            ]
        name = device if isinstance(device, str) else device.name
        return [n for n in self.nodes if n.device == name]

    def area_used(self, device: DeviceSpec | str) -> float:
        name = device if isinstance(device, str) else device.name
        return sum(n.area_on(name) for n in self.placed(name))


def _footprint_symbols(candidate: "Candidate") -> frozenset[str]:
    footprint = candidate.function.loop_footprints.get(
        candidate.profile.header_address
    )
    if footprint is None:
        return frozenset()
    return frozenset(footprint.symbols)


def build_graph(
    candidates: Iterable["Candidate"],
    platform: "Platform",
    devices: tuple[DeviceSpec, ...] | None = None,
    total_cycles: int = 0,
) -> PartitionGraph:
    """Lower a candidate list onto the partition graph.

    Nodes keep the candidates' hotness order (the estimator sorts by
    software cycles); overlap and alias edges are derived from the
    candidates' block sets and memory footprints.  Costs stay empty until
    the annotate pass runs.
    """
    devices = tuple(devices) if devices is not None else platform.devices
    graph = PartitionGraph(
        platform=platform, devices=devices, total_cycles=total_cycles,
        nodes=[PartitionNode(candidate=c) for c in candidates],
    )
    symbols = [_footprint_symbols(n.candidate) for n in graph.nodes]
    for i, node in enumerate(graph.nodes):
        for j in range(i + 1, len(graph.nodes)):
            other = graph.nodes[j]
            if node.candidate.overlaps(other.candidate):
                graph.edges.append(PartitionEdge(kind=OVERLAP, a=i, b=j))
                continue
            shared = symbols[i] & symbols[j]
            if shared:
                graph.edges.append(
                    PartitionEdge(kind=ALIAS, a=i, b=j, symbols=shared)
                )
    return graph
