"""The one partitioning entry point: ``partition(graph, devices, passes=...)``.

``flow.py``, the dynamic controller's static baseline, the CLI and the
benchmarks all come through here; the legacy two-device helpers
(``greedy_partition`` and friends, ``NinetyTenPartitioner``) are thin shims
over this function and reproduce their pre-refactor results bit-identically
(see ``tests/partition/test_legacy_shim.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.partition.graph import PartitionGraph, build_graph
from repro.partition.passes import (
    AnnotatePass,
    FilterPass,
    LegalizePass,
    PartitionPass,
    PassManager,
    PipelineReport,
    ReportPass,
)
from repro.partition.placement import PLACEMENTS, PlacementPass
from repro.partition.result import PartitionResult, result_from_graph
from repro.platform.devices import DeviceSpec, cpu_device, fabric_device

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.partition.estimator import Candidate
    from repro.platform.platform import Platform


@dataclass
class PartitionOutcome:
    """Everything one pipeline run produced."""

    graph: PartitionGraph
    result: PartitionResult
    report: PipelineReport
    algorithm: str

    @property
    def placements(self) -> dict[str, str]:
        return self.graph.assignment()

    @property
    def pass_seconds(self) -> dict[str, float]:
        return dict(self.report.pass_seconds)

    def by_device(self) -> dict[str, list[str]]:
        """Device name -> placed kernel names (devices with nothing placed
        included, so capacity reports always show every device)."""
        out: dict[str, list[str]] = {d.name: [] for d in self.graph.devices}
        for node in self.graph.nodes:
            out[node.device or "cpu"].append(node.name)
        return out


def legacy_devices(platform: "Platform") -> tuple[DeviceSpec, ...]:
    """The pre-refactor two-device view: CPU + one monolithic fabric
    carrying the whole kernel budget, regardless of ``fabric_regions``
    (the legacy partitioners never saw regions)."""
    return (
        cpu_device(platform.cpu_clock_mhz),
        fabric_device(0, platform.capacity_gates,
                      platform.device.max_clock_mhz,
                      platform.device.bram_bytes),
    )


def make_placement(algorithm: str | PlacementPass, **kwargs) -> PlacementPass:
    if isinstance(algorithm, PlacementPass):
        return algorithm
    try:
        factory = PLACEMENTS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown placement algorithm {algorithm!r} "
            f"(known: {sorted(PLACEMENTS)})"
        ) from None
    return factory(**kwargs)


def default_passes(
    algorithm: str | PlacementPass = "90-10",
    legacy: bool = False,
) -> list[PartitionPass]:
    """The standard pipeline: filter -> annotate -> place -> legalize ->
    report.  ``legacy=True`` keeps every candidate through the filter stage
    (the pre-refactor algorithms carried infeasible candidates and rejected
    them at selection time; pruning would perturb e.g. the exhaustive
    pool)."""
    placement = make_placement(algorithm)
    return [
        FilterPass(FilterPass.KEEP_ALL) if legacy else FilterPass(),
        AnnotatePass(),
        placement,
        LegalizePass(),
        ReportPass(),
    ]


def _placement_algorithm(passes: Sequence[PartitionPass]) -> str:
    for pipeline_pass in passes:
        if isinstance(pipeline_pass, PlacementPass):
            return pipeline_pass.algorithm
    return "custom"


def partition(
    graph: PartitionGraph | Iterable["Candidate"],
    devices: Sequence[DeviceSpec] | None = None,
    *,
    platform: "Platform | None" = None,
    total_cycles: int | None = None,
    passes: Sequence[PartitionPass] | str | PlacementPass | None = None,
) -> PartitionOutcome:
    """Partition over an explicit device list through the pass pipeline.

    *graph* is either a prebuilt :class:`PartitionGraph` or a candidate
    list (then *platform* and *total_cycles* are required and the graph is
    built here over *devices*, defaulting to ``platform.devices``).

    *passes* is the full ordered pass list, or -- as a shorthand -- an
    algorithm name / placement pass to drop into the default pipeline.
    Every pass is individually timed and traced; the per-pass wall clock
    lands in ``outcome.result.pass_seconds`` and on the
    ``partition.pass_seconds`` obs histogram.
    """
    if not isinstance(graph, PartitionGraph):
        if platform is None:
            raise ValueError(
                "partition(candidates, ...) needs platform= to build a graph"
            )
        graph = build_graph(
            graph, platform,
            devices=tuple(devices) if devices is not None else None,
            total_cycles=total_cycles or 0,
        )
    elif devices is not None and tuple(devices) != graph.devices:
        raise ValueError(
            "devices= disagrees with the prebuilt graph's device list"
        )

    if passes is None:
        pass_list = default_passes()
    elif isinstance(passes, (str, PlacementPass)):
        pass_list = default_passes(passes)
    else:
        pass_list = list(passes)

    manager = PassManager(pass_list)
    report = manager.run(graph)
    result = result_from_graph(
        graph,
        algorithm=_placement_algorithm(pass_list),
        seconds=report.total_seconds,
        pass_seconds=report.pass_seconds,
    )
    return PartitionOutcome(
        graph=graph, result=result, report=report,
        algorithm=result.algorithm,
    )
