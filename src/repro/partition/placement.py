"""Placement algorithms as interchangeable pipeline passes.

Every algorithm the repo ever had -- the paper's 90-10 heuristic, greedy
value-density, GCLP, simulated annealing, and the exhaustive reference --
is a :class:`PlacementPass` now, parameterized by the graph's device list
instead of one hard-coded FPGA budget.  Placement targets are tried in
device-declaration order; a node goes to the hardware device that saves
the most time and still has room, or stays on the CPU.

Bit-identity contract: with a single fabric device (the legacy two-device
platform), each pass reproduces its pre-refactor partitioner's decisions
exactly -- same selection order, same float arithmetic, and for annealing
the same random stream.  The differential suite in
``tests/partition/test_legacy_shim.py`` holds every algorithm to this over
all 20 benchmarks on hard and soft platforms.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass

from repro.partition.graph import PartitionGraph, PartitionNode
from repro.partition.passes import PartitionPass
from repro.platform.devices import DeviceSpec


@dataclass(frozen=True)
class NinetyTenOptions:
    hot_fraction: float = 0.90   # the "90" of 90-10
    max_hot_loops: int = 8       # "the most frequent few loops"
    min_local_speedup: float = 1.0


class PlacementPass(PartitionPass):
    """Base for placement: tracks per-device area while deciding."""

    name = "place"
    algorithm = "?"

    def run(self, graph: PartitionGraph) -> None:
        raise NotImplementedError

    # -- shared device arithmetic -----------------------------------------

    @staticmethod
    def _fresh_usage(graph: PartitionGraph) -> dict[str, float]:
        return {device.name: 0.0 for device in graph.hw_devices}

    @staticmethod
    def _best_spot(
        graph: PartitionGraph, node: PartitionNode, used: dict[str, float]
    ) -> tuple[DeviceSpec, float] | None:
        """The hardware device saving the most time that still has room
        (declaration order breaks ties); None when nothing fits."""
        best: tuple[DeviceSpec, float] | None = None
        for device in graph.hw_devices:
            if used[device.name] + node.area_on(device) > device.capacity_gates:
                continue
            saved = node.saved_on(device)
            if best is None or saved > best[1]:
                best = (device, saved)
        return best

    @staticmethod
    def _best_saved(graph: PartitionGraph, node: PartitionNode) -> float:
        """Best time saving across hardware devices, room ignored."""
        return max(node.saved_on(device) for device in graph.hw_devices)

    @staticmethod
    def _best_density(graph: PartitionGraph, node: PartitionNode) -> float:
        return max(
            (node.saved_on(d) / node.area_on(d) if node.area_on(d) > 0 else 0.0)
            for d in graph.hw_devices
        )

    @staticmethod
    def _best_speedup(graph: PartitionGraph, node: PartitionNode) -> float:
        """Local speedup on the best device (sw seconds / hw seconds)."""
        best = 0.0
        for device in graph.hw_devices:
            cost = node.costs.get(device.name)
            cpu = node.costs.get("cpu")
            if cost is None or cpu is None:
                speedup = node.candidate.local_speedup
            else:
                speedup = (
                    cpu.seconds / cost.seconds if cost.seconds > 0 else 0.0
                )
            best = max(best, speedup)
        return best

    @staticmethod
    def _conflicts(graph: PartitionGraph, node: PartitionNode) -> bool:
        return any(
            node.candidate.overlaps(placed.candidate)
            for placed in graph.placed()
        )

    @staticmethod
    def _eligible(graph: PartitionGraph) -> list[int]:
        return [
            i for i, node in enumerate(graph.nodes) if not node.pruned
        ]

    def _place(
        self, graph: PartitionGraph, index: int, device: DeviceSpec,
        used: dict[str, float], step: int = 0,
    ) -> None:
        graph.place(index, device, step=step)
        used[device.name] += graph.nodes[index].area_on(device)


class GreedyPlacement(PlacementPass):
    """Greedy by time-saved per gate (classic knapsack value density)."""

    algorithm = "greedy"

    def run(self, graph: PartitionGraph) -> None:
        used = self._fresh_usage(graph)
        ranked = sorted(
            self._eligible(graph),
            key=lambda i: -self._best_density(graph, graph.nodes[i]),
        )
        for index in ranked:
            node = graph.nodes[index]
            spot = self._best_spot(graph, node, used)
            if spot is None or spot[1] <= 0:
                continue
            if self._conflicts(graph, node):
                continue
            self._place(graph, index, spot[0], used)


class ExhaustivePlacement(PlacementPass):
    """Optimal assignment by estimated time saved (reference, small n).

    With one hardware device this is the legacy subset enumeration over the
    top ``max_candidates`` savers; with D devices the pool shrinks so the
    (D+1)^n assignment space stays within the same ~2^16 evaluations.
    """

    algorithm = "exhaustive"

    def __init__(self, max_candidates: int = 14):
        self.max_candidates = max_candidates

    def _pool(self, graph: PartitionGraph, width: int) -> list[int]:
        limit = self.max_candidates
        if width > 2:
            limit = min(limit, max(1, int(16 / math.log2(width))))
        return sorted(
            self._eligible(graph),
            key=lambda i: -self._best_saved(graph, graph.nodes[i]),
        )[:limit]

    def run(self, graph: PartitionGraph) -> None:
        devices = graph.hw_devices
        pool = self._pool(graph, len(devices) + 1)
        if not pool:
            return
        if len(devices) == 1:
            self._run_single(graph, pool, devices[0])
            return
        self._run_multi(graph, pool, devices)

    def _run_single(
        self, graph: PartitionGraph, pool: list[int], device: DeviceSpec
    ) -> None:
        """The legacy subset enumeration, bit-for-bit (mask order included:
        ties between equal-saved subsets resolve to the first mask found)."""
        from repro.partition.legalize import selection_feasible

        budget = device.capacity_gates
        nodes = [graph.nodes[i] for i in pool]
        best_slots: list[int] = []
        best_saved = 0.0
        for mask in range(1 << len(pool)):
            slots = [i for i in range(len(pool)) if mask >> i & 1]
            selection = [nodes[i].candidate for i in slots]
            if not selection_feasible(selection, budget):
                continue
            saved = sum(c.saved_seconds for c in selection)
            if saved > best_saved:
                best_saved = saved
                best_slots = slots
        used = self._fresh_usage(graph)
        for slot in best_slots:
            self._place(graph, pool[slot], device, used)

    def _run_multi(
        self, graph: PartitionGraph, pool: list[int],
        devices: tuple[DeviceSpec, ...],
    ) -> None:
        best_assign: tuple[int, ...] | None = None
        best_saved = 0.0
        capacity = [d.capacity_gates for d in devices]
        for assign in itertools.product(range(len(devices) + 1), repeat=len(pool)):
            area = [0.0] * len(devices)
            saved = 0.0
            placed: list[PartitionNode] = []
            feasible = True
            for slot, choice in enumerate(assign):
                if choice == 0:
                    continue
                node = graph.nodes[pool[slot]]
                device = devices[choice - 1]
                area[choice - 1] += node.area_on(device)
                if area[choice - 1] > capacity[choice - 1]:
                    feasible = False
                    break
                if any(node.candidate.overlaps(p.candidate) for p in placed):
                    feasible = False
                    break
                placed.append(node)
                saved += node.saved_on(device)
            if feasible and saved > best_saved:
                best_saved = saved
                best_assign = assign
        if best_assign is None:
            return
        used = self._fresh_usage(graph)
        for slot, choice in enumerate(best_assign):
            if choice:
                self._place(graph, pool[slot], devices[choice - 1], used)


class NinetyTenPlacement(PlacementPass):
    """The paper's three-step heuristic: hot loops, alias coupling, fill."""

    algorithm = "90-10"

    def __init__(self, options: NinetyTenOptions | None = None):
        self.options = options or NinetyTenOptions()

    def run(self, graph: PartitionGraph) -> None:
        options = self.options
        used = self._fresh_usage(graph)
        ranked = sorted(
            self._eligible(graph),
            key=lambda i: -graph.nodes[i].candidate.profile.sw_cycles,
        )

        def fits(index: int) -> bool:
            return self._best_spot(graph, graph.nodes[index], used) is not None

        def select(index: int, step: int) -> None:
            node = graph.nodes[index]
            spot = self._best_spot(graph, node, used)
            assert spot is not None
            self._place(graph, index, spot[0], used, step=step)

        # --- step 1: the most frequent few loops (~90% of execution) -----
        # For each hot loop the best *granularity* within its nest (outer
        # vs inner) is the family member that saves the most time.
        covered = 0
        for index in ranked:
            node = graph.nodes[index]
            if covered >= options.hot_fraction * graph.total_cycles:
                break
            if len(graph.placement_order) >= options.max_hot_loops:
                break
            if self._conflicts(graph, node) or not fits(index):
                continue
            family = [
                j for j in ranked
                if j == index
                or graph.nodes[j].candidate.overlaps(node.candidate)
            ]
            family = [
                j for j in family
                if not self._conflicts(graph, graph.nodes[j]) and fits(j)
            ]
            if not family:
                continue
            best = max(
                family, key=lambda j: self._best_saved(graph, graph.nodes[j])
            )
            if self._best_speedup(graph, graph.nodes[best]) <= options.min_local_speedup:
                continue
            select(best, step=1)
            covered += graph.nodes[best].candidate.profile.sw_cycles

        # --- step 2: alias-coupled regions -------------------------------
        selected_symbols: set[str] = set()
        for node in graph.placed():
            footprint = node.candidate.function.loop_footprints.get(
                node.candidate.profile.header_address
            )
            if footprint is not None:
                selected_symbols |= footprint.symbols
        for index in ranked:
            node = graph.nodes[index]
            if self._conflicts(graph, node) or not fits(index):
                continue
            footprint = node.candidate.function.loop_footprints.get(
                node.candidate.profile.header_address
            )
            if footprint is None or not footprint.symbols:
                continue
            if footprint.symbols & selected_symbols:
                if self._best_speedup(graph, node) > options.min_local_speedup:
                    select(index, step=2)
                    selected_symbols |= footprint.symbols

        # --- step 3: greedy fill by profile x suitability ------------------
        remaining = [
            i for i in ranked
            if not self._conflicts(graph, graph.nodes[i])
        ]
        remaining.sort(
            key=lambda i: -(
                graph.nodes[i].candidate.profile.sw_cycles
                * max(0.0, self._best_speedup(graph, graph.nodes[i]))
            )
        )
        for index in remaining:
            node = graph.nodes[index]
            if self._conflicts(graph, node):
                continue
            if not fits(index):
                continue  # paper: "until the area constraint is violated"
            spot = self._best_spot(graph, node, used)
            if spot is None or spot[1] <= 0:
                continue
            select(index, step=3)


class GclpPlacement(PlacementPass):
    """GCLP-style placement after Kalavade & Lee (1994), adapted to loop
    granularity and an N-device budget.

    Each step computes a *global criticality* GC -- how far the current
    mapping is from the performance objective -- and maps the next unmapped
    region: time-critical steps (high GC) map the region with the largest
    time saving; relaxed steps use the local phase preference, area economy
    (saved seconds per gate).
    """

    algorithm = "gclp"

    def run(self, graph: PartitionGraph) -> None:
        platform = graph.platform
        used = self._fresh_usage(graph)
        objective = 0.5 * platform.cpu_seconds(graph.total_cycles)

        unmapped = [
            i for i in self._eligible(graph)
            if self._best_saved(graph, graph.nodes[i]) > 0
        ]
        current_time = platform.cpu_seconds(graph.total_cycles)
        while unmapped:
            gc = (current_time - objective) / max(current_time, 1e-12)
            if gc > 0.1:
                unmapped.sort(
                    key=lambda i: -self._best_saved(graph, graph.nodes[i])
                )
            else:
                unmapped.sort(
                    key=lambda i: -self._best_density(graph, graph.nodes[i])
                )
            index = unmapped.pop(0)
            node = graph.nodes[index]
            spot = self._best_spot(graph, node, used)
            if spot is None:
                continue
            if self._conflicts(graph, node):
                continue
            self._place(graph, index, spot[0], used)
            current_time -= spot[1]


class AnnealingPlacement(PlacementPass):
    """Simulated annealing after Henkel (1999), minimizing execution time
    with capacity-violation penalties.  Deterministic via a fixed seed.

    May end infeasible -- the legalize pass repairs it (the repair policy
    that used to live inside this algorithm, now shared by all of them).
    The single-device path replays the legacy random stream exactly.
    """

    algorithm = "annealing"

    def __init__(self, iterations: int = 4000, seed: int = 12345):
        self.iterations = iterations
        self.seed = seed

    def run(self, graph: PartitionGraph) -> None:
        pool = [
            i for i in self._eligible(graph)
            if self._best_saved(graph, graph.nodes[i]) != 0.0
        ]
        if not pool:
            return
        if len(graph.hw_devices) == 1:
            self._run_single(graph, pool)
        else:
            self._run_multi(graph, pool)

    def _run_single(self, graph: PartitionGraph, pool: list[int]) -> None:
        """The legacy single-budget loop, bit-for-bit (same rng stream)."""
        rng = random.Random(self.seed)
        device = graph.hw_devices[0]
        budget = device.capacity_gates
        nodes = [graph.nodes[i] for i in pool]
        baseline = graph.platform.cpu_seconds(graph.total_cycles)

        def cost(bits: list[bool]) -> float:
            selection = [n.candidate for n, bit in zip(nodes, bits) if bit]
            area = sum(c.area for c in selection)
            saved = sum(c.saved_seconds for c in selection)
            penalty = 0.0
            if area > budget:
                penalty += (area - budget) / budget
            for a, b in itertools.combinations(selection, 2):
                if a.overlaps(b):
                    penalty += 1.0
            return (baseline - saved) / baseline + penalty

        bits = [False] * len(pool)
        best_bits = list(bits)
        current = cost(bits)
        best = current
        temperature = 1.0
        for _step in range(self.iterations):
            index = rng.randrange(len(pool))
            bits[index] = not bits[index]
            candidate_cost = cost(bits)
            delta = candidate_cost - current
            if delta <= 0 or rng.random() < pow(
                2.718281828, -delta / max(temperature, 1e-9)
            ):
                current = candidate_cost
                if current < best:
                    best = current
                    best_bits = list(bits)
            else:
                bits[index] = not bits[index]
            temperature *= 0.999

        used = self._fresh_usage(graph)
        for slot, bit in enumerate(best_bits):
            if bit:
                self._place(graph, pool[slot], device, used)

    def _run_multi(self, graph: PartitionGraph, pool: list[int]) -> None:
        rng = random.Random(self.seed)
        devices = graph.hw_devices
        nodes = [graph.nodes[i] for i in pool]
        baseline = graph.platform.cpu_seconds(graph.total_cycles)

        def cost(assign: list[int]) -> float:
            area = [0.0] * len(devices)
            saved = 0.0
            placed: list[PartitionNode] = []
            penalty = 0.0
            for node, choice in zip(nodes, assign):
                if choice < 0:
                    continue
                device = devices[choice]
                area[choice] += node.area_on(device)
                saved += node.saved_on(device)
                placed.append(node)
            for k, device in enumerate(devices):
                if area[k] > device.capacity_gates:
                    penalty += (
                        (area[k] - device.capacity_gates) / device.capacity_gates
                    )
            for a, b in itertools.combinations(placed, 2):
                if a.candidate.overlaps(b.candidate):
                    penalty += 1.0
            return (baseline - saved) / baseline + penalty

        assign = [-1] * len(pool)
        best_assign = list(assign)
        current = cost(assign)
        best = current
        temperature = 1.0
        for _step in range(self.iterations):
            index = rng.randrange(len(pool))
            previous = assign[index]
            proposal = rng.randrange(len(devices) + 1) - 1
            assign[index] = -1 if proposal == previous else proposal
            candidate_cost = cost(assign)
            delta = candidate_cost - current
            if delta <= 0 or rng.random() < pow(
                2.718281828, -delta / max(temperature, 1e-9)
            ):
                current = candidate_cost
                if current < best:
                    best = current
                    best_assign = list(assign)
            else:
                assign[index] = previous
            temperature *= 0.999

        used = self._fresh_usage(graph)
        for slot, choice in enumerate(best_assign):
            if choice >= 0:
                self._place(graph, pool[slot], devices[choice], used)


#: placement algorithms by CLI/API name
PLACEMENTS: dict[str, type[PlacementPass]] = {
    "90-10": NinetyTenPlacement,
    "greedy": GreedyPlacement,
    "gclp": GclpPlacement,
    "annealing": AnnealingPlacement,
    "exhaustive": ExhaustivePlacement,
}
