"""Capacity and overlap legality: the one shared implementation.

Budget/overlap validation used to live in three copies -- ``_feasible`` in
``baselines.py``, the annealing repair loop, and the 90-10 partitioner's
``fits``/``conflicts`` closures.  This module is the single source now:

* the candidate-list helpers (:func:`conflicts_any`,
  :func:`selection_feasible`, :func:`repair_selection`) keep the legacy
  single-budget arithmetic bit-for-bit (the two-device shim depends on it),
* the graph helpers (:func:`graph_feasible`, :func:`repair_graph`) are the
  N-device generalization the legalize pass runs after every placement
  algorithm.

Repair policy (same as the legacy annealing repair): keep placements in
descending saved-seconds order, dropping to software anything that no
longer fits its device or overlaps a kept node.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.partition.estimator import Candidate
    from repro.partition.graph import PartitionGraph


# -- candidate-list (legacy single-budget) form ----------------------------

def conflicts_any(candidate: "Candidate", chosen: Iterable["Candidate"]) -> bool:
    """True if *candidate* overlaps any already-chosen candidate."""
    return any(candidate.overlaps(other) for other in chosen)


def selection_feasible(selection: Sequence["Candidate"], budget: float) -> bool:
    """The legacy feasibility test: total area within budget, no overlaps."""
    area = sum(c.area for c in selection)
    if area > budget:
        return False
    for i, a in enumerate(selection):
        for b in selection[i + 1:]:
            if a.overlaps(b):
                return False
    return True


def repair_selection(
    selection: list["Candidate"], budget: float
) -> list["Candidate"]:
    """Drop worst offenders until feasible (legacy annealing repair).

    Sorts by descending saved seconds (stable), then greedily keeps what
    fits the budget without overlapping anything already kept.
    """
    selection.sort(key=lambda c: -c.saved_seconds)
    repaired: list["Candidate"] = []
    area = 0.0
    for candidate in selection:
        if area + candidate.area <= budget and not conflicts_any(
            candidate, repaired
        ):
            repaired.append(candidate)
            area += candidate.area
    return repaired


# -- graph (N-device) form --------------------------------------------------

def graph_feasible(graph: "PartitionGraph") -> bool:
    """Every device within capacity, no two placed nodes overlapping."""
    for device in graph.hw_devices:
        placed = graph.placed(device)
        area = sum(node.area_on(device) for node in placed)
        if area > device.capacity_gates:
            return False
    placed = graph.placed()
    for i, a in enumerate(placed):
        for b in placed[i + 1:]:
            if a.candidate.overlaps(b.candidate):
                return False
    return True


def repair_graph(graph: "PartitionGraph") -> int:
    """Re-legalize a placed graph in place; returns how many placements
    were dropped back to software.

    The same policy as :func:`repair_selection`, generalized per device:
    placements are revisited in descending saved-seconds order (each node
    judged on its assigned device) and kept only while their device stays
    within capacity and no kept node overlaps them.  With one fabric
    device this is the legacy repair operation-for-operation.
    """
    order = list(graph.placement_order)
    order.sort(key=lambda i: -graph.nodes[i].saved_on(graph.nodes[i].device))
    used: dict[str, float] = {d.name: 0.0 for d in graph.hw_devices}
    capacity: dict[str, float] = {
        d.name: d.capacity_gates for d in graph.hw_devices
    }
    kept: list[int] = []
    dropped: list[int] = []
    for index in order:
        node = graph.nodes[index]
        device = node.device
        area = node.area_on(device)
        if used[device] + area <= capacity[device] and not any(
            node.candidate.overlaps(graph.nodes[k].candidate) for k in kept
        ):
            kept.append(index)
            used[device] += area
        else:
            dropped.append(index)
    for index in dropped:
        graph.unplace(index)
    graph.placement_order[:] = kept
    return len(dropped)
