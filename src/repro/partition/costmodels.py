"""Per-device cost models: one registry, looked up by device kind.

The estimator used to hard-code a single CPU-vs-FPGA cost comparison; the
pipeline instead asks the registry "what does this candidate cost on that
device?" so new device kinds (CGRA grids, soft-core slots) plug in without
touching any placement algorithm.  The dynamic controller's online
accounting goes through the same registry (see
:func:`repro.dynamic.controller`), so static placement and timeline
arithmetic can never drift apart.

All models are deterministic and derive from the numbers the flow already
computed (profiles + synthesized kernels); registering a model for an
unknown kind is how platform plugins extend the system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.partition.estimator import kernel_fpga_cycles, kernel_hw_seconds
from repro.platform.devices import CGRA, CPU, FABRIC, DeviceSpec

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.partition.estimator import Candidate
    from repro.platform.platform import Platform


@dataclass(frozen=True)
class DeviceCost:
    """What one candidate costs when implemented on one device."""

    seconds: float     # wall-clock per program run on this device
    area_gates: float  # device area the implementation occupies

    def saved_vs(self, software: "DeviceCost") -> float:
        return software.seconds - self.seconds


class CostModel:
    """Base: cost of implementing a candidate on one device kind."""

    kind = "?"

    def cost(
        self, platform: "Platform", device: DeviceSpec, candidate: "Candidate"
    ) -> DeviceCost:
        raise NotImplementedError


class CpuCostModel(CostModel):
    """Software: the profiled cycles at the CPU clock; no fabric area."""

    kind = CPU

    def cost(self, platform, device, candidate) -> DeviceCost:
        return DeviceCost(
            seconds=platform.cpu_seconds(candidate.profile.sw_cycles),
            area_gates=0.0,
        )


class FabricCostModel(CostModel):
    """Fine-grained FPGA fabric: the synthesized kernel as-is.

    Identical arithmetic to the legacy estimator
    (:func:`repro.partition.estimator.kernel_hw_seconds`), so the two-device
    shim reproduces pre-refactor results bit-for-bit.
    """

    kind = FABRIC

    def cost(self, platform, device, candidate) -> DeviceCost:
        return DeviceCost(
            seconds=kernel_hw_seconds(platform, candidate.kernel,
                                      candidate.profile),
            area_gates=candidate.kernel.area_gates,
        )

    def kernel_seconds(self, platform, kernel, profile) -> float:
        """Online form used by the dynamic controller (kernel + cumulative
        profile, no Candidate wrapper)."""
        return kernel_hw_seconds(platform, kernel, profile)


class CgraCostModel(CostModel):
    """Coarse-grained reconfigurable array (Galanis et al. style).

    Word-level ALU grids amortize the per-bit LUT overhead of fine-grained
    fabric: the same kernel packs into fewer equivalent gates
    (``AREA_FACTOR``) but the grid clock is fixed by the word-level
    interconnect (``device.clock_mhz``) rather than the datapath, so a
    kernel that out-clocked the grid on LUTs slows down and a slow LUT
    datapath speeds up.  CPU-side invocation/migration overheads are
    unchanged -- the bus does not care what sits behind it.
    """

    kind = CGRA

    #: word-level packing: ~45% of the fine-grained equivalent-gate area
    AREA_FACTOR = 0.45

    def cost(self, platform, device, candidate) -> DeviceCost:
        kernel, profile = candidate.kernel, candidate.profile
        grid_hz = device.clock_mhz * 1e6
        cycles = kernel_fpga_cycles(kernel, profile)
        overhead_cycles = (
            profile.invocations * platform.invocation_overhead_cycles
        )
        migration_cycles = 0.0
        if kernel.localized and kernel.bram_bytes:
            migration_cycles = (
                2 * (kernel.bram_bytes / 4) * platform.migration_cycles_per_word
            )
        cpu_side = (overhead_cycles + migration_cycles) / (
            platform.cpu_clock_mhz * 1e6
        )
        return DeviceCost(
            seconds=cycles / grid_hz + cpu_side,
            area_gates=kernel.area_gates * self.AREA_FACTOR,
        )


_REGISTRY: dict[str, CostModel] = {}


def register_cost_model(model: CostModel) -> None:
    """Register (or replace) the cost model for ``model.kind``."""
    _REGISTRY[model.kind] = model


def cost_model_for(device: DeviceSpec | str) -> CostModel:
    kind = device if isinstance(device, str) else device.kind
    try:
        return _REGISTRY[kind]
    except KeyError:
        raise KeyError(
            f"no cost model registered for device kind {kind!r} "
            f"(known: {sorted(_REGISTRY)}); register one with "
            "repro.partition.costmodels.register_cost_model"
        ) from None


def device_cost(
    platform: "Platform", device: DeviceSpec, candidate: "Candidate"
) -> DeviceCost:
    return cost_model_for(device).cost(platform, device, candidate)


register_cost_model(CpuCostModel())
register_cost_model(FabricCostModel())
register_cost_model(CgraCostModel())
