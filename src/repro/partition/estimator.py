"""Candidate hardware regions: every profiled loop, synthesized and costed.

A candidate bundles the loop's software profile with its synthesized
hardware implementation and the resulting time estimates on a given
platform.  Partitioners then just pick subsets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.binary.image import Executable
from repro.decompile.decompiler import DecompiledFunction, DecompiledProgram
from repro.errors import SynthesisError
from repro.partition.profiles import LoopProfile, ProgramProfile
from repro.platform.platform import Platform
from repro.synth.synthesizer import HwKernel, SynthesisOptions, Synthesizer


@dataclass
class Candidate:
    """One loop considered for hardware implementation."""

    function: DecompiledFunction
    profile: LoopProfile
    kernel: HwKernel
    hw_seconds: float   # time per program run if moved to hardware
    sw_seconds: float   # time per program run in software

    @property
    def name(self) -> str:
        return self.kernel.name

    @property
    def area(self) -> float:
        return self.kernel.area_gates

    @property
    def saved_seconds(self) -> float:
        return self.sw_seconds - self.hw_seconds

    @property
    def local_speedup(self) -> float:
        return self.sw_seconds / self.hw_seconds if self.hw_seconds > 0 else 0.0

    def overlaps(self, other: "Candidate") -> bool:
        """Two candidates conflict if their block sets intersect (nesting)."""
        if self.function.name != other.function.name:
            return False
        return bool(
            set(self.profile.block_starts) & set(other.profile.block_starts)
        )


def kernel_fpga_cycles(kernel: HwKernel, profile: LoopProfile) -> float:
    """FPGA cycles for *kernel* to perform the profiled work (no CPU side).

    Shared by the static estimate below and the dynamic controller's
    interval accounting, so placement decisions and timeline arithmetic can
    never drift apart.
    """
    if kernel.pipelined:
        iterations = profile.iterations * kernel.iterations_multiplier
        fill = max(0, kernel.schedule_length - kernel.ii)
        return iterations * kernel.ii + profile.invocations * fill
    fpga_cycles = 0.0
    for start, length in kernel.block_schedules.items():
        count = profile.block_counts.get(start, 0)
        fpga_cycles += count * length * kernel.iterations_multiplier
    return fpga_cycles


def kernel_hw_seconds(
    platform: Platform, kernel: HwKernel, profile: LoopProfile
) -> float:
    """Wall-clock seconds for *kernel* to perform the profiled work."""
    fpga_hz = kernel.clock_mhz * 1e6
    fpga_cycles = kernel_fpga_cycles(kernel, profile)
    overhead_cycles = profile.invocations * platform.invocation_overhead_cycles
    migration_cycles = 0.0
    if kernel.localized and kernel.bram_bytes:
        # move the region in before the first use and back once at the end
        migration_cycles = 2 * (kernel.bram_bytes / 4) * platform.migration_cycles_per_word
    cpu_side = (overhead_cycles + migration_cycles) / (platform.cpu_clock_mhz * 1e6)
    return fpga_cycles / fpga_hz + cpu_side


def build_candidates(
    exe: Executable,
    program: DecompiledProgram,
    profile: ProgramProfile,
    platform: Platform,
    synthesis: SynthesisOptions | None = None,
    min_cycles_fraction: float = 0.005,
) -> list[Candidate]:
    """Synthesize every loop worth considering (>0.5 % of execution)."""
    synthesis = synthesis or SynthesisOptions(device=platform.device)
    synthesizer = Synthesizer(synthesis)
    threshold = profile.total_cycles * min_cycles_fraction
    candidates: list[Candidate] = []
    for func in program.functions.values():
        for loop in func.loops:
            key = (func.name, func.cfg.blocks[loop.header].start)
            loop_profile = profile.loops.get(key)
            if loop_profile is None or loop_profile.sw_cycles <= threshold:
                continue
            if loop_profile.iterations <= 0:
                continue
            try:
                kernel = synthesizer.synthesize_loop(func, loop, exe)
            except SynthesisError:
                continue
            hw_seconds = kernel_hw_seconds(platform, kernel, loop_profile)
            sw_seconds = platform.cpu_seconds(loop_profile.sw_cycles)
            candidates.append(
                Candidate(
                    function=func,
                    profile=loop_profile,
                    kernel=kernel,
                    hw_seconds=hw_seconds,
                    sw_seconds=sw_seconds,
                )
            )
    candidates.sort(key=lambda c: -c.profile.sw_cycles)
    return candidates
